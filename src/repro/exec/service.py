"""Campaign service: a resident, multi-tenant measurement server.

``python -m repro serve`` turns the execution engine into a
long-running HTTP service.  Where every CLI invocation rebuilds hot
machines, packed-kernel caches and worker pools from scratch, the
service keeps them *resident*: one :class:`~repro.sim.machine.Machine`
per (architecture, seed, plane) with its summary/stack memos warm, one
shared :class:`~repro.exec.executors.ParallelExecutor` worker pool, and
one :class:`~repro.exec.store.ResultStore` that every client request
reads and feeds.  Because measurements are pure functions of content,
the service can dedupe and cache aggressively without changing a
single bit of output: a response is always bit-identical to a one-shot
``SerialExecutor.run`` of the same plan.

Endpoints (all JSON; streamed bodies are chunked JSON Lines):

``POST /plans``
    Submit a plan (:func:`~repro.exec.serialize.plan_from_dict` wire
    form plus ``arch``/``seed``/``vector``).  The response streams one
    header line, then one line per unique cell *ordered by
    completion* -- warm cells first, measured batches as they land --
    and a trailer with the run's accounting.  Each cell line carries
    the cell's index in the submitted plan, its store key, its
    ``source`` (``store``/``measured``/``dedup``) and the full
    measurement.
``GET /runs``
    The persistent :class:`~repro.exec.registry.RunRegistry` listing:
    every run ever served against this store -- id, plan digest, state
    (``running``/``complete``/``interrupted``/``quarantined``) and
    accounting -- surviving journal GC and server restarts.
``GET /runs/<id>``
    Resume/status endpoint: the registry's durable record plus, while
    the run's :class:`~repro.exec.journal.RunJournal` exists, the
    stored measurement of every cell journaled done.  Resubmitting the
    plan is always the resume path (warm cells serve from the store
    with zero re-measurement).
``GET /stats``
    Cache / store / fault / dedup / admission counters of the whole
    service.
``GET /health``
    Liveness probe (the only endpoint exempt from token auth).

Hardening (this layer treats survivable restarts and bounded
degradation as first-class):

* **run registry** -- every submission appends its state transitions
  to a crash-safe, flock'd ``<store>/registry.jsonl``; a restarted
  server replays it and reconciles runs that were in flight when the
  previous process died, so ``kill -9`` loses no run history and
  resumed plans re-measure nothing the store already holds.
* **admission control** -- optional bearer-token auth (``REPRO_TOKEN``
  / ``--token``; 401 without it), a bounded in-flight cell budget and
  request cap answering ``429 Too Many Requests`` with ``Retry-After``
  (clients back off and resubmit; measurements are pure, so a retried
  submission is bit-identical), and per-connection write deadlines so
  one stalled reader can never wedge a flight other clients wait on.
* **graceful drain** -- SIGTERM (``python -m repro serve``) stops
  admission (503 + ``Retry-After``), lets in-flight flights finish
  streaming, flushes the registry, and exits 0.

Multi-tenant contracts:

* **warm serve** -- a cell already in the store is served straight
  from disk; a fully warm plan performs zero ``Machine.run`` calls.
* **single-flight** -- concurrent clients submitting overlapping plans
  trigger each distinct in-flight cell at most once: the first client
  to claim a cell's content-addressed key measures it (the *leader*),
  every other client waits on the same flight and receives the
  leader's bytes.  A follower whose leader fails rescues the cell
  itself, so one client's disconnect never loses another's results.
* **journal retention** -- every request journals under its
  content-addressed run id; once a run completes with all cells
  durable in the store, :func:`~repro.exec.journal.gc_journals`
  reclaims the journal (interrupted and quarantined runs are kept).

Executions serialize on one engine lock (plans queue; cells within a
plan still shard across the worker pool), which keeps the resident
machine's caches and the parallel pool single-writer.  Everything is
stdlib -- :class:`http.server.ThreadingHTTPServer`, one thread per
connected client -- so the service adds no dependencies.
"""

from __future__ import annotations

import hmac
import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from repro.errors import (
    MicroProbeError,
    PlanValidationError,
    ServiceError,
    UnknownArchitectureError,
)
from repro.exec import faults
from repro.exec.executors import ParallelExecutor, SerialExecutor
from repro.exec.journal import RunJournal, audit_journals, gc_journals, run_id
from repro.exec.plan import ExperimentPlan
from repro.exec.registry import RunRegistry, plan_digest
from repro.exec.serialize import (
    DEFAULT_INTERN_CAPACITY,
    PLAN_WIRE_V2,
    WIRE_V1,
    WIRE_VERSIONS,
    WireInternCache,
    plan_from_dict,
)
from repro.exec.store import ResultStore
from repro.measure.measurement import Measurement
from repro.sim.machine import Machine, _vector_enabled_by_default

logger = logging.getLogger("repro.exec.service")

FORMAT = "repro-serve-v1"

#: How long a follower waits on another client's in-flight cell before
#: rescuing it (re-probing the store, then measuring it itself).
DEFAULT_FLIGHT_TIMEOUT_S = 600.0

#: Per-connection socket deadline: the longest one blocking read or
#: write against a client may stall.  Leaders emit while holding the
#: engine lock, so without a deadline one reader that stops draining
#: its socket wedges every queued plan; with it, the write raises and
#: the run completes server-side (followers and the store still get
#: every cell).
DEFAULT_WRITE_DEADLINE_S = 60.0

#: ``Retry-After`` seconds on backpressure responses (429/503).
#: Deliberately short: clients own the capped exponential backoff, the
#: header only keeps the first retry from landing instantly.
DEFAULT_RETRY_AFTER_S = 0.25


# -- single-flight registry ----------------------------------------------------


class _Flight:
    """One in-flight cell: the leader resolves, followers wait."""

    __slots__ = ("event", "measurement", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.measurement: Measurement | None = None
        self.error: str | None = None


class _FlightRegistry:
    """Single-flight map: content-addressed cell key -> in-flight cell.

    ``claim`` either registers a new flight (the caller becomes the
    leader and *must* eventually resolve or fail it) or returns the
    existing one (the caller is a follower).  Resolution removes the
    flight, so later requests fall through to the store.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}

    def claim(self, key: str) -> tuple[_Flight, bool]:
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                return flight, False
            flight = _Flight()
            self._flights[key] = flight
            return flight, True

    def resolve(self, key: str, measurement: Measurement) -> None:
        with self._lock:
            flight = self._flights.pop(key, None)
        if flight is not None:
            flight.measurement = measurement
            flight.event.set()

    def fail(self, key: str, error: str) -> None:
        with self._lock:
            flight = self._flights.pop(key, None)
        if flight is not None:
            flight.error = error
            flight.event.set()

    def __len__(self) -> int:
        with self._lock:
            return len(self._flights)


# -- the service ---------------------------------------------------------------


class _Engine:
    """One resident measurement substrate: machine + executor."""

    __slots__ = ("machine", "executor")

    def __init__(self, machine: Machine, executor) -> None:
        self.machine = machine
        self.executor = executor


class MeasurementService:
    """The resident measurement plane behind the HTTP handler.

    Holds machines/executors per (architecture, seed, plane), the
    shared store, the single-flight registry and the service counters.
    Usable directly (tests drive :meth:`submit` without a socket) or
    through :func:`build_server`.
    """

    def __init__(
        self,
        store: ResultStore | str | None = None,
        parallel: int | None = None,
        retries: int | None = None,
        timeout: float | None = None,
        flight_timeout: float = DEFAULT_FLIGHT_TIMEOUT_S,
        journal_gc: bool = True,
        token: str | None = None,
        max_inflight_cells: int | None = None,
        max_requests: int | None = None,
        write_deadline: float = DEFAULT_WRITE_DEADLINE_S,
        retry_after: float = DEFAULT_RETRY_AFTER_S,
        intern_capacity: int = DEFAULT_INTERN_CAPACITY,
        wire_v2: bool = True,
    ) -> None:
        self.store = (
            ResultStore(store)
            if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__")
            else store
        )
        self.parallel = parallel
        self.retries = retries
        self.timeout = timeout
        self.flight_timeout = flight_timeout
        self.journal_gc = journal_gc
        self.token = token or None
        self.max_inflight_cells = max_inflight_cells
        self.max_requests = max_requests
        self.write_deadline = write_deadline
        self.retry_after = retry_after
        #: Whether v2 (digest-pooled) plan bodies are accepted and
        #: advertised.  ``False`` makes this process behave exactly
        #: like a pre-v2 server -- the knob the mixed-version tests
        #: and ``--wire-v1`` migration escape hatch rely on.
        self.wire_v2 = wire_v2
        #: Cross-request intern cache: wire digest -> rebuilt object.
        #: Serves both wire versions (v1 bodies intern under digests
        #: the server computes itself); 0 disables.
        self.intern = (
            WireInternCache(intern_capacity) if intern_capacity > 0 else None
        )
        self._engines: dict[tuple, _Engine] = {}
        #: Serializes executor.execute calls: the resident machines'
        #: caches and the parallel worker pool are single-writer.
        #: Classification (store probes, flight claims) stays
        #: concurrent, so overlapping clients dedupe while a plan runs.
        self._engine_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._flights = _FlightRegistry()
        #: Admitted-but-unfinished work, bounded by the budgets above.
        self._inflight_requests = 0
        self._inflight_cells = 0
        self._idle = threading.Condition(self._state_lock)
        self._draining = threading.Event()
        self._counters = {
            "requests": 0,
            "cells_requested": 0,
            "warm_cells": 0,
            "leader_cells": 0,
            "measured_cells": 0,
            "dedup_waits": 0,
            "follower_rescues": 0,
            "quarantined_cells": 0,
            "journals_gcd": 0,
            "rejected_requests": 0,
            "drain_rejected": 0,
            "auth_failures": 0,
            "broken_streams": 0,
            "wire_v2_requests": 0,
        }
        #: Durable run listing; replayed from ``<store>/registry.jsonl``
        #: and reconciled against journals: nothing can be ``running``
        #: before this process serves its first request.
        self.registry: RunRegistry | None = None
        if self.store is not None:
            self.registry = RunRegistry(self.store.root)
            recovered = self.registry.recover(self.store.root)
            if recovered:
                logger.warning(
                    "run registry: reconciled %d run(s) left in flight by "
                    "the previous server process",
                    recovered,
                )

    @property
    def wire_versions(self) -> list[int]:
        """Wire versions this server accepts, newest last (advertised
        on ``/health`` and ``/probe`` for client negotiation)."""
        return list(WIRE_VERSIONS) if self.wire_v2 else [WIRE_V1]

    # -- counters --------------------------------------------------------------

    def _count(self, name: str, value: int = 1) -> None:
        with self._state_lock:
            self._counters[name] = self._counters.get(name, 0) + value

    # -- admission control -----------------------------------------------------

    def authorized(self, header: str | None) -> bool:
        """Whether ``Authorization: Bearer <token>`` matches the service
        token (constant-time compare); trivially true without a token."""
        if self.token is None:
            return True
        if not header:
            return False
        presented = header.strip()
        if presented.lower().startswith("bearer "):
            presented = presented[len("bearer ") :].strip()
        return hmac.compare_digest(presented, self.token)

    def _admit(self, run: str, cells: int) -> None:
        """Admit one plan submission or raise the backpressure error.

        Rejections are cheap and honest: they happen before the stream
        header, before the journal, before any flight claim -- the
        client sees a clean 429/503 with ``Retry-After`` and resubmits,
        and because measurements are pure the retried submission is
        bit-identical to one that was admitted first try.
        """
        if self._draining.is_set():
            self._count("drain_rejected")
            raise ServiceError(
                "service is draining (shutdown in progress)",
                status=503,
                retry_after=self.retry_after,
            )
        plan = faults.active()
        if plan is not None and plan.maybe_reject(f"serve:{run}"):
            self._count("rejected_requests")
            raise ServiceError(
                "injected admission rejection (chaos testing)",
                status=429,
                retry_after=self.retry_after,
            )
        with self._state_lock:
            over_requests = (
                self.max_requests is not None
                and self._inflight_requests >= self.max_requests
            )
            # A request's first admission always passes an empty cell
            # budget, so one oversized plan degrades to "alone on the
            # service" instead of being unservable.
            over_cells = (
                self.max_inflight_cells is not None
                and self._inflight_cells > 0
                and self._inflight_cells + cells > self.max_inflight_cells
            )
            if over_requests or over_cells:
                self._counters["rejected_requests"] += 1
                kind = "requests" if over_requests else "cells"
                raise ServiceError(
                    f"service at capacity ({kind} budget); retry shortly",
                    status=429,
                    retry_after=self.retry_after,
                )
            self._inflight_requests += 1
            self._inflight_cells += cells

    def _release(self, cells: int) -> None:
        with self._idle:
            self._inflight_requests -= 1
            self._inflight_cells -= cells
            if self._inflight_requests == 0:
                self._idle.notify_all()

    def drain(self) -> None:
        """Stop admitting work; in-flight submissions finish streaming."""
        if not self._draining.is_set():
            self._draining.set()
            logger.warning(
                "drain: admission closed; finishing in-flight submissions"
            )

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no admitted submission is in flight.

        Completion records append synchronously, so once this returns
        true the registry is flushed; ``True`` iff idle within
        ``timeout``.
        """
        with self._idle:
            return self._idle.wait_for(
                lambda: self._inflight_requests == 0, timeout
            )

    # -- engines ---------------------------------------------------------------

    def _engine(self, arch_name: str, seed: int, vector) -> _Engine:
        resolved = (
            _vector_enabled_by_default() if vector is None else bool(vector)
        )
        key = (arch_name.upper(), seed, resolved)
        with self._state_lock:
            engine = self._engines.get(key)
            if engine is not None:
                return engine
            from repro.march.definition import get_architecture

            machine = Machine(
                get_architecture(arch_name), seed=seed, vector=resolved
            )
            if self.parallel and self.parallel > 1:
                executor = ParallelExecutor(
                    machine,
                    workers=self.parallel,
                    store=self.store,
                    retries=self.retries,
                    timeout=self.timeout,
                )
            else:
                executor = SerialExecutor(
                    machine,
                    store=self.store,
                    retries=self.retries,
                    timeout=self.timeout,
                )
            engine = _Engine(machine, executor)
            self._engines[key] = engine
            logger.info(
                "engine up: %s seed=%d plane=%s executor=%s",
                arch_name,
                seed,
                "vector" if resolved else "scalar",
                type(executor).__name__,
            )
            return engine

    def close(self) -> None:
        """Release worker pools and store handles."""
        with self._state_lock:
            engines = list(self._engines.values())
        for engine in engines:
            close = getattr(engine.executor, "close", None)
            if close is not None:
                close()
        if self.store is not None:
            self.store.close()

    # -- request handling ------------------------------------------------------

    def submit(self, request: dict, start) -> dict:
        """Serve one ``POST /plans`` request.

        ``request`` is the parsed JSON body; ``start`` is a callable
        returning the line-emit function -- it is only invoked once the
        request has validated, so malformed plans surface as a clean
        HTTP error instead of a half-streamed response.  Returns the
        trailer summary (also emitted as the final line).
        """
        arch_name = str(request.get("arch", "POWER7"))
        try:
            seed = int(request.get("seed", 0))
        except (TypeError, ValueError):
            raise ServiceError("plan request carries a non-integer seed")
        vector = request.get("vector")
        if request.get("wire") == PLAN_WIRE_V2:
            if not self.wire_v2:
                raise ServiceError(
                    "this server does not accept wire format v2 plan "
                    "bodies; resubmit in v1 (inline cells)"
                )
            self._count("wire_v2_requests")
        try:
            plan = plan_from_dict(request, intern=self.intern)
            engine = self._engine(arch_name, seed, vector)
            plan.validate_against(engine.machine)
        except UnknownArchitectureError as exc:
            raise ServiceError(str(exc), status=404) from None
        except (PlanValidationError, MicroProbeError) as exc:
            raise ServiceError(str(exc)) from None
        executor = engine.executor
        keys = [executor.key_of(cell) for cell in plan.cells]
        run = run_id(keys)
        self._admit(run, len(keys))
        try:
            return self._serve(
                plan, keys, run, arch_name, seed, executor, start
            )
        finally:
            self._release(len(keys))

    def _serve(
        self,
        plan: ExperimentPlan,
        keys: list[str],
        run: str,
        arch_name: str,
        seed: int,
        executor,
        start,
    ) -> dict:
        """The admitted half of :meth:`submit`: journal, registry,
        classification, execution, trailer."""
        self._count("requests")
        self._count("cells_requested", len(keys))
        logger.info(
            "request: %s on %s seed=%d (run %s)",
            plan.describe(),
            arch_name,
            seed,
            run,
        )
        if self.registry is not None:
            self.registry.record(
                run,
                "running",
                cells=len(keys),
                plan=plan.describe(),
                plan_digest=plan_digest(keys),
                arch=arch_name,
                seed=seed,
            )

        emit = start()
        fault_plan = faults.active()
        if fault_plan is not None:
            fault_plan.maybe_stall(f"serve:{run}")
        emit(
            {
                "service": FORMAT,
                "run": run,
                "cells": len(keys),
                "arch": arch_name,
                "seed": seed,
            }
        )
        try:
            trailer = self._execute(plan, keys, run, executor, emit)
        except BaseException as exc:
            # The run died mid-flight (engine failure, shutdown): the
            # registry must not keep saying "running" -- the journal
            # and store already hold whatever landed, so a resubmit
            # resumes warm.
            if self.registry is not None:
                self.registry.record(
                    run,
                    "interrupted",
                    error=f"{type(exc).__name__}: {exc}",
                )
            raise
        if self.registry is not None:
            self.registry.record(
                run,
                "quarantined" if trailer["failures"] else "complete",
                measured=trailer["measured"],
                warm=trailer["warm"],
                deduped=trailer["deduped"],
                failures=len(trailer["failures"]),
            )
        return trailer

    def _execute(
        self,
        plan: ExperimentPlan,
        keys: list[str],
        run: str,
        executor,
        emit,
    ) -> dict:
        """Classify, measure and stream one admitted run; the trailer."""
        journal: RunJournal | None = None
        if self.store is not None:
            journal = RunJournal(self.store.root, run)
            journal.start(len(keys), plan.describe())

        # Classification: warm cells stream immediately; cold cells are
        # either claimed (this request leads their measurement) or
        # followed (another request is already measuring them).
        warm_keys: list[str] = []
        leaders: list[int] = []
        followers: list[tuple[int, str, _Flight]] = []
        for index, (cell, key) in enumerate(zip(plan.cells, keys)):
            found = self.store.get(key) if self.store is not None else None
            if found is not None:
                warm_keys.append(key)
                emit(
                    {
                        "cell": index,
                        "key": key,
                        "source": "store",
                        "measurement": found.to_dict(),
                    }
                )
                continue
            flight, leading = self._flights.claim(key)
            if leading:
                leaders.append(index)
            else:
                followers.append((index, key, flight))
        self._count("warm_cells", len(warm_keys))
        self._count("leader_cells", len(leaders))
        self._count("dedup_waits", len(followers))
        if journal is not None and warm_keys:
            journal.mark_done(warm_keys)

        measured = 0
        rescued = 0
        failures: list[dict] = []
        if leaders:
            measured, leader_failures = self._lead(
                plan, keys, leaders, executor, journal, emit
            )
            failures.extend(leader_failures)
        for index, key, flight in followers:
            outcome = self._follow(
                plan.cells[index], index, key, flight, executor, journal, emit
            )
            if outcome == "rescued":
                rescued += 1
                measured += 1
            elif isinstance(outcome, dict):
                failures.append(outcome)

        if journal is not None:
            journal.complete(measured, {})
            if self.journal_gc:
                self._count("journals_gcd", gc_journals(self.store))
        self._count("measured_cells", measured)
        self._count("follower_rescues", rescued)
        self._count("quarantined_cells", len(failures))
        trailer = {
            "complete": True,
            "run": run,
            "cells": len(keys),
            "warm": len(warm_keys),
            "measured": measured,
            "deduped": len(followers),
            "failures": failures,
        }
        emit(trailer)
        return trailer

    def _lead(
        self,
        plan: ExperimentPlan,
        keys: list[str],
        leaders: list[int],
        executor,
        journal: RunJournal | None,
        emit,
    ) -> tuple[int, list[dict]]:
        """Measure the cells this request claimed; resolve their flights.

        The sub-plan executes under the engine lock; the executor's
        ``progress`` hook publishes every landed batch to the flight
        registry *before* it is written to this client's stream, so
        followers receive results even if this client's connection
        breaks mid-response.
        """
        owned = {
            id(plan.cells[index]): (index, keys[index]) for index in leaders
        }
        resolved: set[str] = set()
        measured = 0

        def publish(batch_cells, batch_measurements, warm: bool) -> None:
            nonlocal measured
            batch_keys = []
            for cell, measurement in zip(batch_cells, batch_measurements):
                index, key = owned[id(cell)]
                self._flights.resolve(key, measurement)
                resolved.add(key)
                batch_keys.append(key)
                if not warm:
                    measured += 1
                emit(
                    {
                        "cell": index,
                        "key": key,
                        "source": "store" if warm else "measured",
                        "measurement": measurement.to_dict(),
                    }
                )
            if journal is not None:
                journal.mark_done(batch_keys)

        subplan = ExperimentPlan(plan.cells[index] for index in leaders)
        failures: list[dict] = []
        try:
            with self._engine_lock:
                report = executor.execute(subplan, progress=publish)
        finally:
            # Whatever this leader could not resolve -- a quarantined
            # cell, or an unexpected abort -- must not strand followers.
            for index, key in owned.values():
                if key not in resolved:
                    self._flights.fail(key, "leader did not produce the cell")

        if not report.ok:
            failures_by_key = {
                failure.key: failure
                for failure in report.failures
                if failure.key
            }
            unmatched = [
                failure for failure in report.failures if not failure.key
            ]
            for position, measurement in enumerate(report.measurements):
                if measurement is not None:
                    continue
                index, key = owned[id(subplan.cells[position])]
                failure = failures_by_key.get(key)
                if failure is None and unmatched:
                    failure = unmatched.pop(0)
                record = failure.to_dict() if failure is not None else {}
                failures.append(record)
                emit({"cell": index, "key": key, "failure": record})
            if journal is not None:
                journal.mark_quarantined(report.failures)
        return measured, failures

    def _follow(
        self,
        cell,
        index: int,
        key: str,
        flight: _Flight,
        executor,
        journal: RunJournal | None,
        emit,
    ):
        """Wait on another request's flight; rescue the cell if it fails.

        Returns ``"dedup"``, ``"rescued"`` or a failure dict.
        """
        landed = flight.event.wait(self.flight_timeout)
        if landed and flight.measurement is not None:
            if journal is not None:
                journal.mark_done([key])
            emit(
                {
                    "cell": index,
                    "key": key,
                    "source": "dedup",
                    "measurement": flight.measurement.to_dict(),
                }
            )
            return "dedup"
        # The leader failed or timed out: the store may still have the
        # cell (leader persisted, then died); otherwise measure it
        # ourselves -- one client's death never loses another's cells.
        found = self.store.get(key) if self.store is not None else None
        if found is not None:
            if journal is not None:
                journal.mark_done([key])
            emit(
                {
                    "cell": index,
                    "key": key,
                    "source": "store",
                    "measurement": found.to_dict(),
                }
            )
            return "dedup"
        logger.warning(
            "rescuing cell %s: its leader %s", key,
            "timed out" if not landed else "failed",
        )
        with self._engine_lock:
            report = executor.execute(ExperimentPlan([cell]))
        measurement = report.measurements[0]
        if measurement is not None:
            if journal is not None:
                journal.mark_done([key])
            emit(
                {
                    "cell": index,
                    "key": key,
                    "source": "measured",
                    "measurement": measurement.to_dict(),
                }
            )
            return "rescued"
        record = report.failures[0].to_dict() if report.failures else {}
        if journal is not None:
            journal.mark_quarantined(report.failures)
        emit({"cell": index, "key": key, "failure": record})
        return record

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict:
        """Cache / store / fault / dedup counters, JSON-able."""
        with self._state_lock:
            counters = dict(self._counters)
            engines = dict(self._engines)
        payload: dict = {
            "service": counters,
            "inflight_cells": len(self._flights),
            "admission": {
                "draining": self.draining,
                "inflight_requests": self._inflight_requests,
                "admitted_cells": self._inflight_cells,
                "max_requests": self.max_requests,
                "max_inflight_cells": self.max_inflight_cells,
                "auth": self.token is not None,
                "write_deadline_s": self.write_deadline,
            },
            "store": None,
            "engines": [],
            "wire": self.wire_versions,
            "intern": self.intern.stats() if self.intern is not None else None,
        }
        if self.store is not None:
            payload["store"] = {
                **self.store.snapshot_stats(),
                "journals": audit_journals(self.store.root),
            }
        if self.registry is not None:
            payload["registry"] = self.registry.summary()
        for (arch_name, seed, resolved), engine in engines.items():
            report = engine.executor.last_report
            payload["engines"].append(
                {
                    "arch": arch_name,
                    "seed": seed,
                    "plane": "vector" if resolved else "scalar",
                    "executor": type(engine.executor).__name__,
                    "caches": engine.machine.cache_stats(),
                    "last_report": (
                        report.describe() if report is not None else None
                    ),
                }
            )
        return payload

    def probe(self, request: dict) -> dict:
        """Serve one ``POST /probe`` request: can this replica rebuild?

        The shard scheduler (and any remote client with a customized
        architecture) sends the content digests its plan's measurements
        depend on -- the base architecture's and, for topology plans,
        each cluster core class's.  The reply says, per name, whether
        this replica's registry reproduces that exact definition; the
        scheduler only routes cells to replicas that answer ``ok``, so
        digest drift surfaces as an up-front routing decision instead
        of silently diverging measurements.
        """
        from repro.march.definition import get_architecture

        def rebuilds(name: str, digest) -> bool:
            try:
                return get_architecture(str(name)).content_digest() == digest
            except MicroProbeError:
                return False

        arch_name = str(request.get("arch", "POWER7"))
        arch_ok = rebuilds(arch_name, request.get("digest"))
        classes = request.get("classes") or {}
        if not isinstance(classes, dict):
            raise ServiceError("probe 'classes' must be an object")
        class_ok = {
            str(name): rebuilds(name, digest)
            for name, digest in classes.items()
        }
        return {
            "service": FORMAT,
            "arch": arch_name,
            "ok": arch_ok and all(class_ok.values()),
            "arch_ok": arch_ok,
            "classes": class_ok,
            "wire": self.wire_versions,
        }

    def runs_listing(self) -> dict:
        """The ``GET /runs`` payload: durable registry + live journals."""
        if self.store is None:
            raise ServiceError(
                "the service has no result store attached; the run "
                "registry needs --store", status=404,
            )
        payload: dict = {"journals": audit_journals(self.store.root)}
        if self.registry is not None:
            payload["registry"] = self.registry.summary()
            payload["runs"] = self.registry.runs()
        return payload

    def run_status(self, run: str) -> tuple[dict, list[tuple[str, dict | None]]]:
        """Status + stored results of one run, for ``GET /runs/<id>``."""
        if self.store is None:
            raise ServiceError(
                "the service has no result store attached; resume needs "
                "--store", status=404,
            )
        record = self.registry.get(run) if self.registry is not None else None
        journal = RunJournal(self.store.root, run)
        if not journal.path.exists():
            if record is not None:
                # Journal GC'd (or lost), registry remembers: report the
                # durable record; resubmitting the plan is the resume
                # path (warm cells serve with zero measurements).
                return (
                    {
                        "run": run,
                        "found": True,
                        "state": record.get("state"),
                        "registry": record,
                        "note": "journal reclaimed; resubmit the plan -- "
                        "warm cells serve from the store with zero "
                        "measurements",
                    },
                    [],
                )
            return (
                {
                    "run": run,
                    "found": False,
                    "note": "unknown run (never served against this "
                    "store); resubmit the plan -- warm cells serve from "
                    "the store with zero measurements",
                },
                [],
            )
        status = {
            "run": run,
            "found": True,
            "state": journal.state,
            "completed": journal.completed,
            "resumed": journal.resumed,
            "done": len(journal.done),
            "quarantined": journal.prior_failures,
        }
        if record is not None:
            status["registry"] = record
        results = []
        for key in sorted(journal.done):
            found = self.store.get(key)
            results.append((key, found.to_dict() if found else None))
        return status, results


# -- HTTP plumbing -------------------------------------------------------------


class ServiceHandler(BaseHTTPRequestHandler):
    """Thin HTTP adapter over :class:`MeasurementService`.

    Streamed responses use chunked transfer encoding, one JSON line
    per chunk, flushed as results land -- ``http.client`` (and any
    HTTP/1.1 client) reassembles them transparently.
    """

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> MeasurementService:
        return self.server.service  # type: ignore[attr-defined]

    def setup(self) -> None:
        # The write deadline doubles as the read deadline: a client
        # that stops draining its response -- or never finishes sending
        # its request -- gets its socket operations timed out instead
        # of holding a handler thread (and, for leaders, the engine
        # lock's queue) hostage.
        self.timeout = self.service.write_deadline
        super().setup()

    def log_message(self, format: str, *args) -> None:
        logger.info("%s %s", self.address_string(), format % args)

    # -- response helpers ------------------------------------------------------

    def _send_json(
        self, status: int, payload: dict, retry_after: float | None = None
    ) -> None:
        body = json.dumps(payload).encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:g}")
        self.end_headers()
        try:
            self.wfile.write(body)
        except OSError:
            self.close_connection = True

    def _send_error(self, exc: ServiceError) -> None:
        self._send_json(
            exc.status, {"error": str(exc)}, retry_after=exc.retry_after
        )

    def _authorized(self) -> bool:
        """Gate every endpoint but ``/health`` behind the bearer token."""
        if self.service.authorized(self.headers.get("Authorization")):
            return True
        self.service._count("auth_failures")
        self._send_json(
            401, {"error": "unauthorized: missing or wrong bearer token"}
        )
        return False

    def _start_stream(self):
        """Send stream headers; the returned emit never raises.

        A client that disconnects mid-stream must not abort the
        server-side execution (followers may be waiting on the cells
        this request leads), so write failures flip a flag and further
        lines are dropped.
        """
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        self.close_connection = True
        state = {"broken": False}

        def emit(line: dict) -> None:
            if state["broken"]:
                return
            data = json.dumps(line).encode() + b"\n"
            try:
                self.wfile.write(b"%x\r\n" % len(data) + data + b"\r\n")
                self.wfile.flush()
            except OSError:
                state["broken"] = True
                self.service._count("broken_streams")
                logger.warning(
                    "client %s went away or stalled past the %.0fs write "
                    "deadline mid-stream; continuing the run for its "
                    "followers and the store",
                    self.address_string(),
                    self.service.write_deadline,
                )

        state["emit"] = emit
        return emit, state

    def _end_stream(self, state) -> None:
        if not state["broken"]:
            try:
                self.wfile.write(b"0\r\n\r\n")
                self.wfile.flush()
            except OSError:
                pass

    # -- verbs -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        path = urlsplit(self.path).path.rstrip("/") or "/"
        if path == "/health":
            self._send_json(
                200,
                {
                    "ok": True,
                    "service": FORMAT,
                    "draining": self.service.draining,
                    # Wire-version negotiation: clients read this (or
                    # the same key on /probe) and send the newest plan
                    # body format both sides speak.  Pre-v2 servers
                    # never sent the key; clients treat absence as [1].
                    "wire": self.service.wire_versions,
                },
            )
            return
        if not self._authorized():
            return
        if path == "/stats":
            self._send_json(200, self.service.stats())
        elif path == "/runs":
            try:
                self._send_json(200, self.service.runs_listing())
            except ServiceError as exc:
                self._send_error(exc)
        elif path.startswith("/runs/"):
            self._get_run(path[len("/runs/") :])
        else:
            self._send_json(404, {"error": f"unknown endpoint {path!r}"})

    def _get_run(self, run: str) -> None:
        try:
            status, results = self.service.run_status(run)
        except ServiceError as exc:
            self._send_error(exc)
            return
        emit, state = self._start_stream()
        emit(status)
        for key, measurement in results:
            emit({"key": key, "measurement": measurement})
        self._end_stream(state)

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        path = urlsplit(self.path).path.rstrip("/")
        if path not in ("/plans", "/probe"):
            self._send_json(404, {"error": f"unknown endpoint {path!r}"})
            return
        if not self._authorized():
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            request = json.loads(self.rfile.read(length))
            if not isinstance(request, dict):
                raise ValueError("plan request must be a JSON object")
        except (ValueError, TypeError) as exc:
            self._send_json(400, {"error": f"malformed request body: {exc}"})
            return

        if path == "/probe":
            try:
                self._send_json(200, self.service.probe(request))
            except ServiceError as exc:
                self._send_error(exc)
            return

        state = None

        def start():
            nonlocal state
            emit, state = self._start_stream()
            return emit

        try:
            self.service.submit(request, start)
        except ServiceError as exc:
            if state is None:
                self._send_error(exc)
                return
            state["emit"]({"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("request failed")
            if state is None:
                self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
                return
            state["emit"]({"error": f"{type(exc).__name__}: {exc}"})
        if state is not None:
            self._end_stream(state)


def build_server(
    service: MeasurementService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A ready-to-serve threading HTTP server bound to ``host:port``.

    ``port=0`` binds an ephemeral port (``server.server_port`` has the
    real one -- the test-suite idiom).  One thread per connected
    client; threads are daemonic so a hard exit never hangs on a
    straggler.
    """
    server = ThreadingHTTPServer((host, port), ServiceHandler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    return server
