"""Declarative instruction-selection helpers (the paper's ISA queries).

These mirror the selection idioms of the Figure-2 script, e.g.::

    loads = [ins for ins in arch.isa() if ins.load()]

but packaged as named, composable functions so generation policies read
naturally: ``loads(isa)``, ``of_type(isa, InstructionType.VECTOR)``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.isa.instruction import InstructionDef, InstructionType
from repro.isa.registry import ISA

Predicate = Callable[[InstructionDef], bool]


def select(isa: ISA | Iterable[InstructionDef], *predicates: Predicate) -> list[InstructionDef]:
    """Instructions satisfying every predicate, in definition order."""
    return [ins for ins in isa if all(pred(ins) for pred in predicates)]


def loads(isa: ISA | Iterable[InstructionDef]) -> list[InstructionDef]:
    """All load instructions."""
    return select(isa, lambda ins: ins.is_load)


def stores(isa: ISA | Iterable[InstructionDef]) -> list[InstructionDef]:
    """All store instructions."""
    return select(isa, lambda ins: ins.is_store)


def memory_ops(isa: ISA | Iterable[InstructionDef]) -> list[InstructionDef]:
    """All loads and stores."""
    return select(isa, lambda ins: ins.is_memory)


def branches(isa: ISA | Iterable[InstructionDef]) -> list[InstructionDef]:
    """All branch instructions."""
    return select(isa, lambda ins: ins.is_branch)


def updates(isa: ISA | Iterable[InstructionDef]) -> list[InstructionDef]:
    """All update-form (address write-back) instructions."""
    return select(isa, lambda ins: ins.is_update_form)


def of_type(
    isa: ISA | Iterable[InstructionDef], itype: InstructionType
) -> list[InstructionDef]:
    """Instructions of one coarse type."""
    return select(isa, lambda ins: ins.itype is itype)


def non_branch_non_memory(
    isa: ISA | Iterable[InstructionDef]
) -> list[InstructionDef]:
    """Computation instructions: everything but branches, loads, stores.

    This is the paper's "non memory, no branch" instruction pool used by
    the Unit Mix training family (Table 2).
    """
    return select(
        isa,
        lambda ins: not ins.is_memory and not ins.is_branch and not ins.is_nop,
    )


def by_mnemonic(
    isa: ISA, mnemonics: Iterable[str]
) -> list[InstructionDef]:
    """Look up several mnemonics, preserving the requested order."""
    return [isa.instruction(name) for name in mnemonics]
