"""Parser for the readable text-file ISA definitions.

The definition files (``*.isa``) follow a columnar, pipe-separated format
that stays close to the ISA manual's tables while remaining trivially
editable by users (the paper's portability argument: add or remove
instructions and re-run the same generation script).

Grammar, one record per line::

    isa <name>                      # header, once, first non-comment line
    <mnemonic> | <type> | <width> | <operands> | <flags> | <encoding> | <desc>

where

* ``type``     is an :class:`~repro.isa.instruction.InstructionType` value,
* ``width``    is the data width in bits,
* ``operands`` is a space-separated list of ``NAME:KIND[WIDTH]:DIR`` specs
  (``-`` for none),
* ``flags``    is a comma-separated list of semantic flags (``-`` for none),
* ``encoding`` is ``opcode`` or ``opcode.extended_opcode``,
* ``desc``     is free text.

``#`` starts a comment; blank lines are ignored.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import DefinitionError
from repro.isa.instruction import InstructionDef, InstructionType
from repro.isa.operand import parse_operand
from repro.isa.registry import ISA

_EXPECTED_FIELDS = 7


def parse_isa_text(text: str, origin: str = "<string>") -> ISA:
    """Parse ISA definition text into an :class:`~repro.isa.registry.ISA`.

    Args:
        text: The full contents of a definition file.
        origin: Path or label used in error messages.

    Raises:
        DefinitionError: On any malformed line, with file/line context.
    """
    name: str | None = None
    instructions: list[InstructionDef] = []

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if name is None:
            if not line.startswith("isa "):
                raise DefinitionError(
                    origin, line_number, "first record must be 'isa <name>'"
                )
            name = line[len("isa "):].strip()
            if not name:
                raise DefinitionError(origin, line_number, "empty ISA name")
            continue
        instructions.append(_parse_record(line, origin, line_number))

    if name is None:
        raise DefinitionError(origin, 0, "empty ISA definition")

    isa = ISA(name=name)
    for instruction in instructions:
        if instruction.mnemonic in isa:
            raise DefinitionError(
                origin, 0, f"duplicate instruction {instruction.mnemonic!r}"
            )
        isa.add(instruction)
    return isa


def parse_isa_file(path: str | Path) -> ISA:
    """Parse an ISA definition file from disk."""
    path = Path(path)
    with open(path) as handle:
        return parse_isa_text(handle.read(), origin=str(path))


def _strip_comment(line: str) -> str:
    index = line.find("#")
    if index == -1:
        return line
    return line[:index]


def _parse_record(line: str, origin: str, line_number: int) -> InstructionDef:
    fields = [field.strip() for field in line.split("|")]
    if len(fields) != _EXPECTED_FIELDS:
        raise DefinitionError(
            origin,
            line_number,
            f"expected {_EXPECTED_FIELDS} pipe-separated fields, "
            f"got {len(fields)}",
        )
    mnemonic, type_spec, width_spec, ops_spec, flag_spec, enc_spec, desc = fields

    if not mnemonic:
        raise DefinitionError(origin, line_number, "empty mnemonic")

    try:
        itype = InstructionType(type_spec)
    except ValueError:
        raise DefinitionError(
            origin, line_number, f"unknown instruction type {type_spec!r}"
        ) from None

    try:
        width = int(width_spec)
    except ValueError:
        raise DefinitionError(
            origin, line_number, f"width must be an integer, got {width_spec!r}"
        ) from None

    operands = ()
    if ops_spec != "-":
        try:
            operands = tuple(
                parse_operand(spec) for spec in ops_spec.split()
            )
        except ValueError as exc:
            raise DefinitionError(origin, line_number, str(exc)) from None

    flags: frozenset[str] = frozenset()
    if flag_spec != "-":
        flags = frozenset(flag.strip() for flag in flag_spec.split(","))

    opcode, extended = _parse_encoding(enc_spec, origin, line_number)

    try:
        return InstructionDef(
            mnemonic=mnemonic,
            itype=itype,
            width=width,
            operands=operands,
            flags=flags,
            opcode=opcode,
            extended_opcode=extended,
            description=desc,
        )
    except ValueError as exc:
        raise DefinitionError(origin, line_number, str(exc)) from None


def _parse_encoding(
    spec: str, origin: str, line_number: int
) -> tuple[int, int | None]:
    if spec == "-":
        return 0, None
    head, _, tail = spec.partition(".")
    try:
        opcode = int(head)
        extended = int(tail) if tail else None
    except ValueError:
        raise DefinitionError(
            origin, line_number, f"bad encoding {spec!r}"
        ) from None
    return opcode, extended
