"""ISA definition module (paper section 2.1.1).

The module loads instruction-set definitions from readable text files and
exposes them through the :class:`~repro.isa.registry.ISA` registry.  The
definitions carry the semantic information the paper enumerates: the
instruction type (load, store, vector, int, float or branch), operand
lengths, conditional execution, privilege level, pre-fetch behaviour, the
registers used and defined, and the binary encoding.

The registry is intentionally mutable: a user can add or remove
instructions and re-run the very same generation script without touching
the framework internals, exactly as the paper describes.
"""

from repro.isa.instruction import InstructionDef, InstructionType
from repro.isa.operand import Operand, OperandDirection, OperandKind
from repro.isa.parser import parse_isa_file, parse_isa_text
from repro.isa.queries import (
    branches,
    by_mnemonic,
    loads,
    memory_ops,
    non_branch_non_memory,
    of_type,
    select,
    stores,
    updates,
)
from repro.isa.registry import ISA, load_default_isa

__all__ = [
    "ISA",
    "InstructionDef",
    "InstructionType",
    "Operand",
    "OperandDirection",
    "OperandKind",
    "branches",
    "by_mnemonic",
    "load_default_isa",
    "loads",
    "memory_ops",
    "non_branch_non_memory",
    "of_type",
    "parse_isa_file",
    "parse_isa_text",
    "select",
    "stores",
    "updates",
]
