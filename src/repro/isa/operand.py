"""Operand model for ISA definitions.

Operands are described by a *kind* (which register file or immediate
class they come from), a *direction* (read, written or both) and, for
immediates and displacements, a width in bits.  The model mirrors the
information a PowerPC assembly programmer reads in the ISA manual's
instruction-format pages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OperandKind(enum.Enum):
    """Register file or immediate class an operand belongs to."""

    GPR = "GPR"  # general purpose register (64-bit)
    FPR = "FPR"  # floating point register (64-bit)
    VR = "VR"  # VMX vector register (128-bit)
    VSR = "VSR"  # VSX vector-scalar register (128-bit)
    CR = "CR"  # condition register field
    SPR = "SPR"  # special purpose register (CTR, LR, XER)
    IMM = "IMM"  # immediate value
    DISP = "DISP"  # memory displacement immediate
    LABEL = "LABEL"  # branch target label

    @property
    def is_register(self) -> bool:
        """Whether the operand selects an architected register."""
        return self in _REGISTER_KINDS

    @property
    def register_width(self) -> int:
        """Width in bits of a register of this kind (0 for non-registers)."""
        return _REGISTER_WIDTHS.get(self, 0)


_REGISTER_KINDS = frozenset(
    {OperandKind.GPR, OperandKind.FPR, OperandKind.VR, OperandKind.VSR,
     OperandKind.CR, OperandKind.SPR}
)

_REGISTER_WIDTHS = {
    OperandKind.GPR: 64,
    OperandKind.FPR: 64,
    OperandKind.VR: 128,
    OperandKind.VSR: 128,
    OperandKind.CR: 4,
    OperandKind.SPR: 64,
}


class OperandDirection(enum.Enum):
    """Whether the instruction reads, writes, or reads-and-writes it."""

    READ = "R"
    WRITE = "W"
    READ_WRITE = "RW"

    @property
    def is_read(self) -> bool:
        return self in (OperandDirection.READ, OperandDirection.READ_WRITE)

    @property
    def is_write(self) -> bool:
        return self in (OperandDirection.WRITE, OperandDirection.READ_WRITE)


@dataclass(frozen=True)
class Operand:
    """One operand slot of an instruction definition.

    Attributes:
        name: The name used in the ISA manual format line (``RT``, ``RA``,
            ``SI``...).
        kind: The operand's register file or immediate class.
        direction: Dataflow direction relative to the instruction.
        width: Width in bits.  For registers this is the register width;
            for immediates and displacements, the encoded field width.
    """

    name: str
    kind: OperandKind
    direction: OperandDirection
    width: int

    @property
    def is_register(self) -> bool:
        return self.kind.is_register

    @property
    def is_immediate(self) -> bool:
        return self.kind in (OperandKind.IMM, OperandKind.DISP)

    def __str__(self) -> str:
        spec = f"{self.name}:{self.kind.value}"
        if self.is_immediate:
            spec += str(self.width)
        return f"{spec}:{self.direction.value}"


def parse_operand(spec: str) -> Operand:
    """Parse a textual operand spec such as ``RT:GPR:W`` or ``SI:IMM16:R``.

    The grammar is ``NAME:KIND[WIDTH]:DIR`` where ``KIND`` is an
    :class:`OperandKind` name, the optional ``WIDTH`` suffix applies to
    immediate kinds, and ``DIR`` is ``R``, ``W`` or ``RW``.

    Raises:
        ValueError: If the spec does not follow the grammar.
    """
    parts = spec.split(":")
    if len(parts) != 3:
        raise ValueError(f"operand spec must have 3 fields, got {spec!r}")
    name, kind_spec, dir_spec = (part.strip() for part in parts)

    width = 0
    kind_name = kind_spec
    digits = ""
    while kind_name and kind_name[-1].isdigit():
        digits = kind_name[-1] + digits
        kind_name = kind_name[:-1]
    if digits:
        width = int(digits)

    try:
        kind = OperandKind[kind_name]
    except KeyError:
        raise ValueError(f"unknown operand kind in {spec!r}") from None
    try:
        direction = OperandDirection(dir_spec)
    except ValueError:
        raise ValueError(f"unknown operand direction in {spec!r}") from None

    if kind.is_register:
        if digits:
            raise ValueError(f"register operands take no width suffix: {spec!r}")
        width = kind.register_width
    elif width == 0:
        raise ValueError(f"immediate operand needs a width suffix: {spec!r}")

    return Operand(name=name, kind=kind, direction=direction, width=width)
