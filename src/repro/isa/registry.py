"""The ISA registry: a mutable, queryable collection of instructions."""

from __future__ import annotations

from collections.abc import Callable, Iterator
from importlib import resources

from repro.errors import UnknownInstructionError
from repro.isa.instruction import InstructionDef, InstructionType

#: Name of the bundled default definition file.
DEFAULT_ISA_RESOURCE = "power_v206b.isa"


class ISA:
    """A named set of instruction definitions.

    The registry preserves insertion order (definition-file order) and is
    mutable so user scripts can extend or prune the instruction set
    without editing framework code.
    """

    def __init__(
        self, name: str, instructions: list[InstructionDef] | None = None
    ) -> None:
        self.name = name
        self._instructions: dict[str, InstructionDef] = {}
        for instruction in instructions or []:
            self.add(instruction)

    # -- container protocol --------------------------------------------------

    def __contains__(self, mnemonic: str) -> bool:
        return mnemonic in self._instructions

    def __iter__(self) -> Iterator[InstructionDef]:
        return iter(self._instructions.values())

    def __len__(self) -> int:
        return len(self._instructions)

    def __repr__(self) -> str:
        return f"ISA({self.name!r}, {len(self)} instructions)"

    # -- access ----------------------------------------------------------------

    def instruction(self, mnemonic: str) -> InstructionDef:
        """Return the definition for ``mnemonic``.

        Raises:
            UnknownInstructionError: If the mnemonic is not registered.
        """
        try:
            return self._instructions[mnemonic]
        except KeyError:
            raise UnknownInstructionError(mnemonic) from None

    def mnemonics(self) -> tuple[str, ...]:
        """All registered mnemonics in definition order."""
        return tuple(self._instructions)

    def select(
        self, predicate: Callable[[InstructionDef], bool]
    ) -> list[InstructionDef]:
        """Instructions satisfying ``predicate``, in definition order."""
        return [ins for ins in self if predicate(ins)]

    def of_type(self, itype: InstructionType) -> list[InstructionDef]:
        """Instructions of the given coarse type."""
        return self.select(lambda ins: ins.itype is itype)

    # -- mutation ---------------------------------------------------------------

    def add(self, instruction: InstructionDef) -> None:
        """Register (or replace) an instruction definition."""
        self._instructions[instruction.mnemonic] = instruction

    def remove(self, mnemonic: str) -> InstructionDef:
        """Remove and return an instruction definition.

        Raises:
            UnknownInstructionError: If the mnemonic is not registered.
        """
        try:
            return self._instructions.pop(mnemonic)
        except KeyError:
            raise UnknownInstructionError(mnemonic) from None

    def copy(self) -> "ISA":
        """An independent copy (definitions themselves are immutable)."""
        return ISA(self.name, list(self))


def load_default_isa() -> ISA:
    """Load the bundled Power ISA v2.06B subset definition."""
    from repro.isa.parser import parse_isa_text

    source = (
        resources.files("repro.isa") / "data" / DEFAULT_ISA_RESOURCE
    ).read_text()
    return parse_isa_text(source, origin=DEFAULT_ISA_RESOURCE)
