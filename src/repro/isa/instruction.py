"""Instruction definitions: the static, ISA-manual view of an instruction.

An :class:`InstructionDef` captures everything the paper's ISA definition
module exposes for a single instruction: type, operand formats and
lengths, semantic flags (update form, record form, carry, conditional
execution, privilege, pre-fetch) and the binary encoding (primary and
extended opcodes).  Dynamic, implementation-specific properties such as
latency, throughput and EPI live in the micro-architecture module
(:mod:`repro.march`), never here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.operand import Operand, OperandKind


class InstructionType(enum.Enum):
    """Coarse semantic class of an instruction (paper section 2.1.1)."""

    LOAD = "load"
    STORE = "store"
    INTEGER = "int"
    FLOAT = "float"
    VECTOR = "vector"
    DECIMAL = "decimal"
    BRANCH = "branch"
    CR = "cr"  # condition-register / move-to-from-SPR plumbing
    NOP = "nop"


#: Flags allowed in the ``flags`` column of the definition files.
VALID_FLAGS = frozenset(
    {
        "update",  # update form: writes the effective address back to RA
        "indexed",  # X-form addressing (RA + RB)
        "carry",  # reads/writes the carry bit (XER[CA])
        "record",  # record form: sets CR0 / CR1
        "overflow",  # OE form: sets XER[OV]
        "algebraic",  # sign-extends the loaded value
        "conditional",  # execution is predicated (e.g. conditional branch)
        "privileged",  # requires supervisor state
        "prefetch",  # data-prefetch hint (does not architecturally load)
        "absolute",  # branch target is absolute, not relative
        "link",  # branch saves return address in LR
        "ctr",  # branch decrements / reads CTR
    }
)


@dataclass(frozen=True)
class InstructionDef:
    """Static definition of one ISA instruction.

    Attributes:
        mnemonic: Assembly mnemonic, unique within an ISA.
        itype: Coarse semantic class.
        width: Data width in bits the instruction operates on (the operand
            length information of the paper; 128 for VSX/VMX forms).
        operands: Operand slots, in assembly order.
        flags: Semantic flags; subset of :data:`VALID_FLAGS`.
        opcode: Primary opcode from the ISA manual.
        extended_opcode: Extended opcode, or ``None`` for D-form style
            encodings without one.
        description: One-line human description from the manual.
    """

    mnemonic: str
    itype: InstructionType
    width: int
    operands: tuple[Operand, ...]
    flags: frozenset[str] = field(default_factory=frozenset)
    opcode: int = 0
    extended_opcode: int | None = None
    description: str = ""

    def __post_init__(self) -> None:
        unknown = self.flags - VALID_FLAGS
        if unknown:
            raise ValueError(
                f"{self.mnemonic}: unknown flags {sorted(unknown)!r}"
            )

    # -- type predicates ---------------------------------------------------

    @property
    def is_load(self) -> bool:
        return self.itype is InstructionType.LOAD

    @property
    def is_store(self) -> bool:
        return self.itype is InstructionType.STORE

    @property
    def is_memory(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_branch(self) -> bool:
        return self.itype is InstructionType.BRANCH

    @property
    def is_integer(self) -> bool:
        return self.itype is InstructionType.INTEGER

    @property
    def is_float(self) -> bool:
        return self.itype is InstructionType.FLOAT

    @property
    def is_vector(self) -> bool:
        return self.itype is InstructionType.VECTOR

    @property
    def is_decimal(self) -> bool:
        return self.itype is InstructionType.DECIMAL

    @property
    def is_nop(self) -> bool:
        return self.itype is InstructionType.NOP

    # -- flag predicates ---------------------------------------------------

    @property
    def is_update_form(self) -> bool:
        return "update" in self.flags

    @property
    def is_indexed(self) -> bool:
        return "indexed" in self.flags

    @property
    def is_algebraic(self) -> bool:
        return "algebraic" in self.flags

    @property
    def is_conditional(self) -> bool:
        return "conditional" in self.flags

    @property
    def is_privileged(self) -> bool:
        return "privileged" in self.flags

    @property
    def is_prefetch(self) -> bool:
        return "prefetch" in self.flags

    # -- operand helpers ---------------------------------------------------

    @property
    def register_reads(self) -> tuple[Operand, ...]:
        """Register operands the instruction reads."""
        return tuple(
            op for op in self.operands
            if op.is_register and op.direction.is_read
        )

    @property
    def register_writes(self) -> tuple[Operand, ...]:
        """Register operands the instruction writes."""
        return tuple(
            op for op in self.operands
            if op.is_register and op.direction.is_write
        )

    @property
    def immediates(self) -> tuple[Operand, ...]:
        """Immediate and displacement operands."""
        return tuple(op for op in self.operands if op.is_immediate)

    @property
    def has_immediate(self) -> bool:
        return bool(self.immediates)

    @property
    def memory_operands(self) -> tuple[Operand, ...]:
        """Operands participating in effective-address generation.

        For D-form memory ops this is ``(RA, D)``; for X-form, ``(RA, RB)``.
        Non-memory instructions have none.
        """
        if not self.is_memory and not self.is_prefetch:
            return ()
        names = {"RA", "RB", "D", "DS", "DQ"}
        return tuple(op for op in self.operands if op.name in names)

    @property
    def target_kind(self) -> OperandKind | None:
        """Register kind of the primary destination, if any."""
        for op in self.operands:
            if op.is_register and op.direction.is_write:
                return op.kind
        return None

    def format_line(self) -> str:
        """Render the manual-style format line, e.g. ``addic RT, RA, SI``."""
        if not self.operands:
            return self.mnemonic
        return f"{self.mnemonic} " + ", ".join(op.name for op in self.operands)

    def __str__(self) -> str:
        return self.format_line()
