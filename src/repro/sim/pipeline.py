"""Analytic steady-state core performance model.

The model computes, for one hardware thread executing an endless loop,
the steady-state cycles per loop iteration as the maximum of four
bounds -- the classic bounds-analysis treatment (Bose et al., "Bounds
modelling and compiler optimizations for superscalar performance
tuning"):

* **dispatch bound** -- loop size over dispatch width;
* **unit bound** -- pipe-occupancy cycles per functional unit over its
  pipe count, with flexible operations (e.g. simple fixed-point ops
  that run on FXU *or* LSU) water-filled across their candidate units;
* **dependency bound** -- the maximum cycle mean of the register
  dependence graph.  The ILP pass assigns at most one producer per
  slot, so the graph is functional and the exact bound is computable in
  linear time by walking producer chains;
* **memory bound** -- total off-L1 miss latency over the per-thread
  outstanding-miss capacity (MSHRs).

SMT sharing divides dispatch, unit and MSHR capacity among the threads
of a core (with a small arbitration overhead), while per-thread
dependency chains are unaffected -- which is exactly why low-ILP
workloads scale well with SMT and high-IPC workloads do not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MicroProbeError
from repro.march.definition import MicroArchitecture
from repro.march.properties import InstructionProperties
from repro.sim.activity import ThreadActivity
from repro.sim.kernel import Kernel

#: Outstanding-miss registers per hardware thread context.
MSHRS_PER_THREAD = 8

#: SMT arbitration overhead on shared-capacity bounds, by SMT way.
SMT_OVERHEAD = {1: 0.0, 2: 0.04, 4: 0.09}

#: Secondary unit usages occupy one pipe-cycle per injected operation.
SECONDARY_OCCUPANCY = 1.0


@dataclass(frozen=True)
class PipelineBounds:
    """The four steady-state bounds, in cycles per loop iteration."""

    dispatch: float
    unit: float
    dependency: float
    memory: float

    @property
    def period(self) -> float:
        """Binding steady-state cycles per iteration."""
        return max(self.dispatch, self.unit, self.dependency, self.memory)

    @property
    def binding(self) -> str:
        """Name of the binding bound."""
        bounds = {
            "dispatch": self.dispatch,
            "unit": self.unit,
            "dependency": self.dependency,
            "memory": self.memory,
        }
        return max(bounds, key=bounds.get)


class CorePipelineModel:
    """Maps kernels to per-thread steady-state activity."""

    def __init__(self, arch: MicroArchitecture) -> None:
        self.arch = arch
        self._level_latency = {
            cache.name: cache.latency for cache in arch.caches
        }
        self._level_latency[arch.memory.name] = arch.memory.latency
        self._l1_name = arch.caches[0].name

    # -- public API ---------------------------------------------------------

    def bounds(self, kernel: Kernel, smt: int = 1) -> PipelineBounds:
        """Steady-state bounds for one thread at the given SMT way."""
        if smt not in SMT_OVERHEAD:
            raise MicroProbeError(f"unsupported SMT way {smt}")
        share = smt / (1.0 - SMT_OVERHEAD[smt])

        dispatch = len(kernel) / self.arch.chip.dispatch_width * share
        unit = self._unit_bound(kernel) * share
        dependency = self._dependency_bound(kernel)
        memory = self._memory_bound(kernel) * share
        return PipelineBounds(
            dispatch=dispatch, unit=unit, dependency=dependency, memory=memory
        )

    def activity(self, kernel: Kernel, smt: int = 1) -> ThreadActivity:
        """Full steady-state activity vector for one thread."""
        period = self.bounds(kernel, smt).period
        frequency = self.arch.chip.cycles_per_second
        iterations_per_second = frequency / period

        insn_rates = {
            mnemonic: count * iterations_per_second
            for mnemonic, count in kernel.mnemonic_counts().items()
        }
        unit_ops = self._unit_ops(kernel)
        unit_op_rates = {
            unit: ops * iterations_per_second for unit, ops in unit_ops.items()
        }
        level_counts = self._level_counts(kernel)
        level_rates = {
            level: count * iterations_per_second
            for level, count in level_counts.items()
        }
        return ThreadActivity(
            ipc=len(kernel) / period,
            insn_rates=insn_rates,
            unit_op_rates=unit_op_rates,
            level_rates=level_rates,
            alternation=self.alternation(kernel),
            entropy=kernel.operand_entropy,
        )

    def counters(
        self, kernel: Kernel, smt: int, duration: float
    ) -> dict[str, float]:
        """Per-thread performance-counter readings over a window."""
        activity = self.activity(kernel, smt)
        return self.counters_from_activity(activity, duration)

    def counters_from_activity(
        self, activity: ThreadActivity, duration: float
    ) -> dict[str, float]:
        """Synthesize PMC readings from an activity vector."""
        frequency = self.arch.chip.cycles_per_second
        readings = {
            "PM_RUN_CYC": frequency * duration,
            "PM_RUN_INST_CMPL": activity.ipc * frequency * duration,
        }
        for unit in self.arch.units.values():
            rate = activity.unit_op_rates.get(unit.name, 0.0)
            readings[unit.counter] = rate * duration
        load_rate = activity.level_rates.get("_loads", 0.0)
        store_rate = activity.level_rates.get("_stores", 0.0)
        readings["PM_LD_REF_L1"] = load_rate * duration
        readings["PM_ST_REF_L1"] = store_rate * duration
        for cache in self.arch.caches[1:]:
            rate = activity.level_rates.get(cache.name, 0.0)
            readings[cache.counter] = rate * duration
        memory_rate = activity.level_rates.get(self.arch.memory.name, 0.0)
        readings[self.arch.memory.counter] = memory_rate * duration
        return readings

    def alternation(self, kernel: Kernel) -> float:
        """Fraction of adjacent slots executing on different units."""
        units = [
            self._primary_unit(self.arch.props(ins.mnemonic))
            for ins in kernel.instructions
        ]
        units = [unit for unit in units if unit is not None]
        if len(units) < 2:
            return 0.0
        pairs = len(units)
        changes = sum(
            1 for index in range(pairs)
            if units[index] != units[(index + 1) % pairs]
        )
        return changes / pairs

    # -- bounds -----------------------------------------------------------------

    def _props(self, mnemonic: str) -> InstructionProperties:
        return self.arch.props(mnemonic)

    @staticmethod
    def _primary_unit(props: InstructionProperties) -> str | None:
        if not props.usages:
            return None
        return props.usages[0].units[0]

    def _unit_occupancies(
        self, kernel: Kernel
    ) -> tuple[dict[str, float], dict[tuple[str, ...], float]]:
        """Fixed per-unit occupancy plus flexible occupancy per unit set."""
        fixed: dict[str, float] = {name: 0.0 for name in self.arch.units}
        flexible: dict[tuple[str, ...], float] = {}
        for instruction in kernel.instructions:
            props = self._props(instruction.mnemonic)
            for position, usage in enumerate(props.usages):
                occupancy = (
                    props.inv_throughput * usage.ops
                    if position == 0
                    else SECONDARY_OCCUPANCY * usage.ops
                )
                if usage.is_flexible:
                    flexible[usage.units] = (
                        flexible.get(usage.units, 0.0) + occupancy
                    )
                else:
                    fixed[usage.units[0]] += occupancy
        return fixed, flexible

    def _waterfill(
        self,
        fixed: dict[str, float],
        flexible: dict[tuple[str, ...], float],
    ) -> dict[str, float]:
        """Assign flexible occupancy to equalize per-pipe load."""
        loads = dict(fixed)
        for units, amount in flexible.items():
            pipes = {name: self.arch.unit(name).pipes for name in units}
            remaining = amount
            # Iteratively raise the common per-pipe level across the
            # candidate units until the flexible occupancy is consumed.
            for _ in range(16):
                if remaining <= 1e-12:
                    break
                level = max(loads[name] / pipes[name] for name in units)
                target = level + remaining / sum(pipes.values())
                for name in units:
                    add = min(
                        remaining, max(0.0, target * pipes[name] - loads[name])
                    )
                    loads[name] += add
                    remaining -= add
        return loads

    def _unit_bound(self, kernel: Kernel) -> float:
        fixed, flexible = self._unit_occupancies(kernel)
        loads = self._waterfill(fixed, flexible)
        return max(
            loads[name] / self.arch.unit(name).pipes for name in loads
        ) if loads else 0.0

    def _unit_ops(self, kernel: Kernel) -> dict[str, float]:
        """Operations per iteration per unit (flexible ops assigned).

        Flexible operations are split across their candidate units in
        proportion to the occupancy the water-filling assigned there.
        """
        fixed_ops: dict[str, float] = {name: 0.0 for name in self.arch.units}
        flexible_ops: dict[tuple[str, ...], float] = {}
        for instruction in kernel.instructions:
            props = self._props(instruction.mnemonic)
            for usage in props.usages:
                if usage.is_flexible:
                    flexible_ops[usage.units] = (
                        flexible_ops.get(usage.units, 0.0) + usage.ops
                    )
                else:
                    fixed_ops[usage.units[0]] += usage.ops

        fixed_occ, flexible_occ = self._unit_occupancies(kernel)
        filled = self._waterfill(fixed_occ, flexible_occ)
        ops = dict(fixed_ops)
        for units, total_ops in flexible_ops.items():
            extra = {
                name: max(0.0, filled[name] - fixed_occ[name])
                for name in units
            }
            total_extra = sum(extra.values())
            for name in units:
                share = extra[name] / total_extra if total_extra else 1 / len(units)
                ops[name] += total_ops * share
        return {name: value for name, value in ops.items() if value > 0}

    def _effective_latency(self, instruction) -> float:
        """Producer latency including the memory-level residency."""
        props = self._props(instruction.mnemonic)
        latency = props.latency
        source = instruction.source_level
        if source is not None and source != self._l1_name:
            latency += self._level_latency[source] - self._level_latency[self._l1_name]
        return latency

    def _dependency_bound(self, kernel: Kernel) -> float:
        """Exact maximum cycle mean of the (functional) dependence graph.

        Each slot has at most one producer edge, so every dependence
        cycle is discovered by walking producer chains once, tracking
        accumulated latency and iteration-boundary crossings.
        """
        instructions = kernel.instructions
        size = len(instructions)
        state = [0] * size  # 0 unvisited, 1 in current walk, 2 done
        best = 0.0

        for start in range(size):
            if state[start] != 0:
                continue
            path: list[int] = []
            position: dict[int, int] = {}
            weights: list[float] = []
            crossings: list[int] = []
            node = start
            while True:
                if state[node] == 2:
                    break
                if node in position:
                    # Found a cycle: slice the walk from its first visit.
                    cycle_start = position[node]
                    weight = sum(weights[cycle_start:])
                    crossing = sum(crossings[cycle_start:])
                    if crossing > 0:
                        best = max(best, weight / crossing)
                    break
                position[node] = len(path)
                path.append(node)
                distance = instructions[node].dep_distance
                if distance is None:
                    break
                producer_index = node - distance
                crossings.append(-(producer_index // size) if producer_index < 0 else 0)
                producer = producer_index % size
                weights.append(self._effective_latency(instructions[producer]))
                node = producer
            for visited in path:
                state[visited] = 2
        return best

    def _memory_bound(self, kernel: Kernel) -> float:
        """Miss-bandwidth bound: total off-L1 latency over the MSHRs."""
        total_latency = 0.0
        l1_latency = self._level_latency[self._l1_name]
        for instruction in kernel.instructions:
            source = instruction.source_level
            if source is None or source == self._l1_name:
                continue
            total_latency += self._level_latency[source] - l1_latency
        return total_latency / MSHRS_PER_THREAD

    def _level_counts(self, kernel: Kernel) -> dict[str, float]:
        """Per-iteration access counts per hierarchy level, plus
        ``_loads``/``_stores`` pseudo-levels for the L1 reference PMCs."""
        counts: dict[str, float] = {}
        for instruction in kernel.instructions:
            source = instruction.source_level
            if source is None:
                continue
            counts[source] = counts.get(source, 0.0) + 1
            isa_def = self.arch.isa.instruction(instruction.mnemonic)
            key = "_stores" if isa_def.is_store else "_loads"
            counts[key] = counts.get(key, 0.0) + 1
        return counts
