"""Analytic steady-state core performance model.

The model computes, for one hardware thread executing an endless loop,
the steady-state cycles per loop iteration as the maximum of four
bounds -- the classic bounds-analysis treatment (Bose et al., "Bounds
modelling and compiler optimizations for superscalar performance
tuning"):

* **dispatch bound** -- loop size over dispatch width;
* **unit bound** -- pipe-occupancy cycles per functional unit over its
  pipe count, with flexible operations (e.g. simple fixed-point ops
  that run on FXU *or* LSU) water-filled across their candidate units;
* **dependency bound** -- the maximum cycle mean of the register
  dependence graph.  The ILP pass assigns at most one producer per
  slot, so the graph is functional and the exact bound is computable in
  linear time by walking producer chains;
* **memory bound** -- total off-L1 miss latency over the per-thread
  outstanding-miss capacity (MSHRs).

SMT sharing divides dispatch, unit and MSHR capacity among the threads
of a core (with a small arbitration overhead), while per-thread
dependency chains are unaffected -- which is exactly why low-ILP
workloads scale well with SMT and high-IPC workloads do not.

Evaluation engine
-----------------

The public entry points (:meth:`CorePipelineModel.bounds`,
:meth:`~CorePipelineModel.activity`, :meth:`~CorePipelineModel.counters`)
run on a :class:`~repro.sim.summary.KernelSummary` computed once per
kernel and memoized by analytic digest: per-mnemonic
:class:`~repro.march.properties.InstructionProperties` lookups are
precompiled into flat occupancy rows at model construction, one
water-fill result is shared between the unit bound and the per-unit
operation split, and kernels declaring a periodic structure are
summarized in O(period) work.  The pre-engine per-instruction walk is
retained as ``reference_*`` methods; property tests assert the two
paths agree to float precision on arbitrary kernels.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

from repro.caching import LRUCache
from repro.errors import MicroProbeError, UnknownInstructionError
from repro.march.definition import MicroArchitecture
from repro.march.properties import InstructionProperties
from repro.sim.activity import ThreadActivity
from repro.sim.kernel import Kernel, KernelInstruction
from repro.sim.summary import KernelSummary

#: Outstanding-miss registers per hardware thread context.
MSHRS_PER_THREAD = 8

#: SMT arbitration overhead on shared-capacity bounds, by SMT way.
SMT_OVERHEAD = {1: 0.0, 2: 0.04, 4: 0.09}

#: Secondary unit usages occupy one pipe-cycle per injected operation.
SECONDARY_OCCUPANCY = 1.0

#: Summaries retained per model; exhaustive sweeps over huge design
#: spaces never revisit a kernel, so the cache evicts LRU past this.
SUMMARY_CACHE_LIMIT = 65_536


@dataclass(frozen=True)
class PipelineBounds:
    """The four steady-state bounds, in cycles per loop iteration."""

    dispatch: float
    unit: float
    dependency: float
    memory: float

    @property
    def period(self) -> float:
        """Binding steady-state cycles per iteration."""
        return max(self.dispatch, self.unit, self.dependency, self.memory)

    @property
    def binding(self) -> str:
        """Name of the binding bound."""
        bounds = {
            "dispatch": self.dispatch,
            "unit": self.unit,
            "dependency": self.dependency,
            "memory": self.memory,
        }
        return max(bounds, key=bounds.get)


class _PropertyRow:
    """Flat, precompiled per-mnemonic occupancy/ops row.

    Everything the hot loop needs from
    :class:`~repro.march.properties.InstructionProperties` and the ISA
    definition, with the usage-position arithmetic (primary usage costs
    ``inv_throughput`` per op, secondaries one pipe-cycle per op)
    already folded in.
    """

    __slots__ = (
        "latency",
        "fixed_occupancy",
        "flexible_occupancy",
        "fixed_ops",
        "flexible_ops",
        "primary_unit",
        "is_store",
    )

    def __init__(
        self,
        props: InstructionProperties,
        is_store: bool,
    ) -> None:
        self.latency = props.latency
        self.is_store = is_store
        fixed_occupancy: list[tuple[str, float]] = []
        flexible_occupancy: list[tuple[tuple[str, ...], float]] = []
        fixed_ops: list[tuple[str, float]] = []
        flexible_ops: list[tuple[tuple[str, ...], float]] = []
        for position, usage in enumerate(props.usages):
            occupancy = (
                props.inv_throughput * usage.ops
                if position == 0
                else SECONDARY_OCCUPANCY * usage.ops
            )
            if usage.is_flexible:
                flexible_occupancy.append((usage.units, occupancy))
                flexible_ops.append((usage.units, usage.ops))
            else:
                fixed_occupancy.append((usage.units[0], occupancy))
                fixed_ops.append((usage.units[0], usage.ops))
        self.fixed_occupancy = tuple(fixed_occupancy)
        self.flexible_occupancy = tuple(flexible_occupancy)
        self.fixed_ops = tuple(fixed_ops)
        self.flexible_ops = tuple(flexible_ops)
        self.primary_unit = (
            props.usages[0].units[0] if props.usages else None
        )


class CorePipelineModel:
    """Maps kernels to per-thread steady-state activity."""

    def __init__(self, arch: MicroArchitecture) -> None:
        self.arch = arch
        self._level_latency = {
            cache.name: cache.latency for cache in arch.caches
        }
        self._level_latency[arch.memory.name] = arch.memory.latency
        self._l1_name = arch.caches[0].name
        self._unit_pipes = {
            name: unit.pipes for name, unit in arch.units.items()
        }
        # Per-mnemonic rows compile lazily on first use (see _row):
        # a model constructed for a handful of kernels -- cold executor
        # machines, parallel workers -- never pays for the full ISA.
        self._rows: dict[str, _PropertyRow] = {}
        self._summaries: LRUCache[int, KernelSummary] = LRUCache(
            SUMMARY_CACHE_LIMIT, "pipeline.summaries"
        )

    # -- public API ---------------------------------------------------------

    def summarize(self, kernel: Kernel) -> KernelSummary:
        """The kernel's steady-state summary (memoized by digest)."""
        digest = kernel.digest()
        cached = self._summaries.get(digest)
        if cached is not None and cached.size == len(kernel):
            return cached
        summary = self._build_summary(kernel, digest)
        self._summaries.put(digest, summary)
        return summary

    def bounds(self, kernel: Kernel, smt: int = 1) -> PipelineBounds:
        """Steady-state bounds for one thread at the given SMT way."""
        return self.bounds_from_summary(self.summarize(kernel), smt)

    def bounds_from_summary(
        self, summary: KernelSummary, smt: int = 1
    ) -> PipelineBounds:
        """Bounds from a precomputed summary (O(1))."""
        share = self._share(smt)
        return PipelineBounds(
            dispatch=summary.size / self.arch.chip.dispatch_width * share,
            unit=summary.unit_bound * share,
            dependency=summary.dependency_bound,
            memory=summary.miss_latency / MSHRS_PER_THREAD * share,
        )

    def activity(self, kernel: Kernel, smt: int = 1) -> ThreadActivity:
        """Full steady-state activity vector for one thread."""
        return self.activity_from_summary(self.summarize(kernel), smt)

    def activity_from_summary(
        self, summary: KernelSummary, smt: int = 1
    ) -> ThreadActivity:
        """Activity vector from a precomputed summary (O(units))."""
        period = self.bounds_from_summary(summary, smt).period
        return self._summary_activity(summary, period)

    def _summary_activity(
        self, summary: KernelSummary, period: float
    ) -> ThreadActivity:
        """Activity of one thread committing an iteration per ``period``."""
        frequency = self.arch.chip.cycles_per_second
        iterations_per_second = frequency / period
        return ThreadActivity(
            ipc=summary.size / period,
            insn_rates={
                mnemonic: count * iterations_per_second
                for mnemonic, count in summary.mnemonic_counts.items()
            },
            unit_op_rates={
                unit: ops * iterations_per_second
                for unit, ops in summary.unit_ops.items()
            },
            level_rates={
                level: count * iterations_per_second
                for level, count in summary.level_counts.items()
            },
            alternation=summary.alternation,
            entropy=summary.entropy,
        )

    def mixed_core_activities(
        self, summaries: Sequence[KernelSummary], smt: int
    ) -> list[ThreadActivity]:
        """Per-thread activities for dissimilar kernels sharing a core.

        Generalizes the homogeneous SMT capacity split: each thread's
        steady-state period is ``max(dependency_bound, beta *
        solo_shared_bound)`` for a common contention multiplier
        ``beta`` -- dependency chains stay private while a single
        arbitration slowdown throttles every co-runner's use of the
        shared resources.  The smallest feasible ``beta`` is found by
        bisection against three monotone capacity constraints, with
        the per-unit constraint *water-filling the mixed occupancies*
        of all co-runners jointly (flexible operations spill to
        whichever pipes the co-runner mix leaves idle):

        * dispatch: combined dispatch-cycles per cycle within the
          arbitration-degraded width;
        * units: the joint water-filled per-pipe load within capacity;
        * memory: combined outstanding-miss latency within the MSHR
          pool.

        For identical co-runners the solution coincides with the
        homogeneous path (``beta = smt / (1 - overhead)`` or the
        dependency bound); the machine still routes homogeneous cores
        through :meth:`activity_from_summary` so those stay
        bit-identical.
        """
        if smt not in SMT_OVERHEAD:
            raise MicroProbeError(f"unsupported SMT way {smt}")
        if len(summaries) != smt:
            raise MicroProbeError(
                f"mixed core needs exactly {smt} co-runners at SMT-{smt}, "
                f"got {len(summaries)}"
            )
        available = 1.0 - SMT_OVERHEAD[smt]
        width = self.arch.chip.dispatch_width
        dispatch = [summary.size / width for summary in summaries]
        memory = [
            summary.miss_latency / MSHRS_PER_THREAD for summary in summaries
        ]
        dependency = [summary.dependency_bound for summary in summaries]
        shared_max = [
            max(d, summary.unit_bound, m)
            for d, summary, m in zip(dispatch, summaries, memory)
        ]

        def periods(beta: float) -> list[float]:
            return [
                max(dep, beta * shared)
                for dep, shared in zip(dependency, shared_max)
            ]

        def feasible(beta: float) -> bool:
            slack = available * (1.0 + 1e-12)
            spans = periods(beta)
            if any(span <= 0.0 for span in spans):
                return False
            rates = [1.0 / span for span in spans]
            if sum(r * d for r, d in zip(rates, dispatch)) > slack:
                return False
            if sum(r * m for r, m in zip(rates, memory)) > slack:
                return False
            fixed = {name: 0.0 for name in self.arch.units}
            flexible: dict[tuple[str, ...], float] = {}
            for rate, summary in zip(rates, summaries):
                for unit, occupancy in summary.fixed_occupancy.items():
                    fixed[unit] += occupancy * rate
                for units, occupancy in summary.flexible_occupancy.items():
                    flexible[units] = (
                        flexible.get(units, 0.0) + occupancy * rate
                    )
            loads = self._waterfill(fixed, flexible)
            bound = max(
                (
                    loads[name] / self._unit_pipes[name]
                    for name in loads
                ),
                default=0.0,
            )
            return bound <= slack

        hi = 1.0
        for _ in range(64):
            if feasible(hi):
                break
            hi *= 2.0
        else:  # pragma: no cover - demands are finite by construction
            raise MicroProbeError("mixed-core contention did not converge")
        lo = 0.0
        for _ in range(80):
            mid = (lo + hi) / 2.0
            if feasible(mid):
                hi = mid
            else:
                lo = mid
        return [
            self._summary_activity(summary, span)
            for summary, span in zip(summaries, periods(hi))
        ]

    def counters(
        self, kernel: Kernel, smt: int, duration: float
    ) -> dict[str, float]:
        """Per-thread performance-counter readings over a window."""
        activity = self.activity(kernel, smt)
        return self.counters_from_activity(activity, duration)

    def counters_from_activity(
        self,
        activity: ThreadActivity,
        duration: float,
        frequency: float | None = None,
    ) -> dict[str, float]:
        """Synthesize PMC readings from an activity vector.

        ``frequency`` overrides the nominal clock for DVFS operating
        points: cycle counts accrue at the scaled clock (the activity's
        rates must already be re-clocked to match, see
        :meth:`ThreadActivity.at_frequency_scale`).
        """
        if frequency is None:
            frequency = self.arch.chip.cycles_per_second
        readings = {
            "PM_RUN_CYC": frequency * duration,
            "PM_RUN_INST_CMPL": activity.ipc * frequency * duration,
        }
        for unit in self.arch.units.values():
            rate = activity.unit_op_rates.get(unit.name, 0.0)
            readings[unit.counter] = rate * duration
        load_rate = activity.level_rates.get("_loads", 0.0)
        store_rate = activity.level_rates.get("_stores", 0.0)
        readings["PM_LD_REF_L1"] = load_rate * duration
        readings["PM_ST_REF_L1"] = store_rate * duration
        for cache in self.arch.caches[1:]:
            rate = activity.level_rates.get(cache.name, 0.0)
            readings[cache.counter] = rate * duration
        memory_rate = activity.level_rates.get(self.arch.memory.name, 0.0)
        readings[self.arch.memory.counter] = memory_rate * duration
        return readings

    def alternation(self, kernel: Kernel) -> float:
        """Fraction of adjacent slots executing on different units."""
        return self.summarize(kernel).alternation

    def cache_stats(self) -> dict:
        """Hit/miss/size counters of the summary memo cache."""
        return self._summaries.stats()

    # -- property rows ------------------------------------------------------------

    def _row(self, mnemonic: str) -> _PropertyRow:
        row = self._rows.get(mnemonic)
        if row is None:
            row = self._rows[mnemonic] = self._build_row(mnemonic)
        return row

    def _build_row(self, mnemonic: str) -> _PropertyRow:
        props = self.arch.props(mnemonic)
        try:
            is_store = self.arch.isa.instruction(mnemonic).is_store
        except UnknownInstructionError:
            # A mnemonic with properties but no ISA definition (a user
            # pruning the ISA after properties were built) can only
            # matter if a kernel still uses it as a memory op, and then
            # it counts as a load.
            is_store = False
        return _PropertyRow(props, is_store)

    def _share(self, smt: int) -> float:
        if smt not in SMT_OVERHEAD:
            raise MicroProbeError(f"unsupported SMT way {smt}")
        return smt / (1.0 - SMT_OVERHEAD[smt])

    # -- summary construction -------------------------------------------------------

    @staticmethod
    def _reduce_parts(
        pattern: tuple[KernelInstruction, ...],
        repeats: int,
        tail: tuple[KernelInstruction, ...],
        declared: int | None = None,
    ) -> tuple[
        tuple[KernelInstruction, ...], int, tuple[KernelInstruction, ...]
    ]:
        """Shrink a declared decomposition to its minimal analytic period.

        The period contract only promises analytic equivalence
        (mnemonic, dependency distance, source level -- addresses may
        differ), so a pattern that is itself analytically periodic with
        some divisor ``q`` of its length describes the same replicated
        body as the ``q``-slot pattern repeated proportionally more
        times; a tail prefix that keeps following that periodicity
        (builders put the replicated remainder plus the loop branch
        there) folds into extra repeats the same way.  Every summary
        quantity below is a function of the decomposition's
        *per-mnemonic integer counts* and junction structure, both
        invariant under this rewrite, so the reduced summary is
        bit-identical to the declared one -- just O(q + reduced tail)
        instead of O(declared period + tail) to accumulate.
        (Stressmark builders declare the lcm of sequence length and
        address round-robin as their period; the analytic period is
        usually the bare sequence length.)

        A ``declared`` analytic period (``Kernel.analytic_period``) is
        trusted like the period fingerprint itself and skips the
        periodicity search entirely.
        """
        length = len(pattern)
        if length < 2 or repeats < 1:
            return pattern, repeats, tail
        if declared is not None and 0 < declared <= length and not length % declared:
            q = declared
            # Inline the analytic-key cache lookup (the tuple is never
            # falsy); builders intern slots, so these are dict gets.
            keys = [
                ins.__dict__.get("_akey") or ins.analytic_key()
                for ins in pattern[:q]
            ]
        else:
            keys = [
                ins.__dict__.get("_akey") or ins.analytic_key()
                for ins in pattern
            ]
            for q in range(1, length // 2 + 1):
                if length % q:
                    continue
                if keys[q:] == keys[: length - q]:
                    break
            else:
                return pattern, repeats, tail
        repeats = repeats * (length // q)
        # Fold the tail prefix that continues the q-periodicity into
        # whole extra repeats; the sub-period remainder it ends on goes
        # back to the front of the reduced tail (those slots are
        # analytically interchangeable with their pattern images).
        follows = 0
        for index, ins in enumerate(tail):
            if (
                ins.__dict__.get("_akey") or ins.analytic_key()
            ) != keys[index % q]:
                break
            follows += 1
        leftover = follows % q
        repeats += (follows - leftover) // q
        return pattern[:q], repeats, tail[follows - leftover:]

    def _build_summary(self, kernel: Kernel, digest: int) -> KernelSummary:
        pattern, repeats, tail = kernel.periodic_parts()
        pattern, repeats, tail = self._reduce_parts(
            pattern, repeats, tail, kernel.analytic_period
        )

        # Per-mnemonic counts: one Counter pass over the period, scaled.
        counts: Counter[str] = Counter()
        for mnemonic, count in Counter(
            ins.mnemonic for ins in pattern
        ).items():
            counts[mnemonic] += count * repeats
        counts.update(ins.mnemonic for ins in tail)

        # Memory accesses per (mnemonic, level); O(period) again.
        memory_counts: Counter[tuple[str, str]] = Counter()
        for key, count in Counter(
            (ins.mnemonic, ins.source_level)
            for ins in pattern
            if ins.source_level is not None
        ).items():
            memory_counts[key] += count * repeats
        memory_counts.update(
            (ins.mnemonic, ins.source_level)
            for ins in tail
            if ins.source_level is not None
        )

        level_counts: dict[str, float] = {}
        miss_latency = 0.0
        l1_latency = self._level_latency[self._l1_name]
        for (mnemonic, level), count in memory_counts.items():
            level_counts[level] = level_counts.get(level, 0.0) + count
            key = "_stores" if self._row(mnemonic).is_store else "_loads"
            level_counts[key] = level_counts.get(key, 0.0) + count
            if level != self._l1_name:
                miss_latency += count * (
                    self._level_latency[level] - l1_latency
                )

        # Unit occupancies and operation counts from the mnemonic
        # histogram; one shared water-fill covers bound and op split.
        fixed_occ = {name: 0.0 for name in self.arch.units}
        flexible_occ: dict[tuple[str, ...], float] = {}
        fixed_ops = {name: 0.0 for name in self.arch.units}
        flexible_ops: dict[tuple[str, ...], float] = {}
        for mnemonic, count in counts.items():
            row = self._row(mnemonic)
            for unit, occupancy in row.fixed_occupancy:
                fixed_occ[unit] += occupancy * count
            for units, occupancy in row.flexible_occupancy:
                flexible_occ[units] = (
                    flexible_occ.get(units, 0.0) + occupancy * count
                )
            for unit, ops in row.fixed_ops:
                fixed_ops[unit] += ops * count
            for units, ops in row.flexible_ops:
                flexible_ops[units] = (
                    flexible_ops.get(units, 0.0) + ops * count
                )

        unit_loads = self._waterfill(fixed_occ, flexible_occ)
        unit_bound = max(
            (
                unit_loads[name] / self._unit_pipes[name]
                for name in unit_loads
            ),
            default=0.0,
        )
        unit_ops = self._split_flexible_ops(
            fixed_ops, flexible_ops, fixed_occ, unit_loads
        )

        # Dependency cycles only exist when some slot carries a link;
        # by the period contract, checking one period plus the tail
        # decides that for the whole body.
        has_deps = any(
            ins.dep_distance is not None for ins in pattern
        ) or any(ins.dep_distance is not None for ins in tail)
        dependency = self._dependency_bound(kernel) if has_deps else 0.0

        return KernelSummary(
            digest=digest,
            size=len(kernel),
            mnemonic_counts=dict(counts),
            level_counts=level_counts,
            miss_latency=miss_latency,
            dependency_bound=dependency,
            unit_loads=unit_loads,
            unit_bound=unit_bound,
            unit_ops=unit_ops,
            alternation=self._periodic_alternation(pattern, repeats, tail),
            entropy=kernel.operand_entropy,
            fixed_occupancy=fixed_occ,
            flexible_occupancy=flexible_occ,
        )

    def _split_flexible_ops(
        self,
        fixed_ops: dict[str, float],
        flexible_ops: dict[tuple[str, ...], float],
        fixed_occ: dict[str, float],
        unit_loads: dict[str, float],
    ) -> dict[str, float]:
        """Assign flexible ops in proportion to water-filled occupancy."""
        ops = dict(fixed_ops)
        for units, total_ops in flexible_ops.items():
            extra = {
                name: max(0.0, unit_loads[name] - fixed_occ[name])
                for name in units
            }
            total_extra = sum(extra.values())
            for name in units:
                share = (
                    extra[name] / total_extra
                    if total_extra
                    else 1 / len(units)
                )
                ops[name] += total_ops * share
        return {name: value for name, value in ops.items() if value > 0}

    def _periodic_alternation(
        self,
        pattern: tuple[KernelInstruction, ...],
        repeats: int,
        tail: tuple[KernelInstruction, ...],
    ) -> float:
        """Unit-alternation of ``pattern * repeats + tail``, O(period).

        Matches the reference definition exactly: primary units of all
        slots (slots with no unit usage excluded), circular adjacent
        pairs, fraction that differ.
        """
        pattern_units = [
            unit
            for unit in (
                self._row(ins.mnemonic).primary_unit for ins in pattern
            )
            if unit is not None
        ]
        tail_units = [
            unit
            for unit in (
                self._row(ins.mnemonic).primary_unit for ins in tail
            )
            if unit is not None
        ]
        total = len(pattern_units) * repeats + len(tail_units)
        if total < 2:
            return 0.0

        changes = 0
        if pattern_units:
            internal = sum(
                1
                for index in range(len(pattern_units) - 1)
                if pattern_units[index] != pattern_units[index + 1]
            )
            junction = int(pattern_units[-1] != pattern_units[0])
            changes += internal * repeats
            if tail_units:
                changes += junction * (repeats - 1)
                changes += int(pattern_units[-1] != tail_units[0])
                changes += int(tail_units[-1] != pattern_units[0])
            else:
                changes += junction * repeats
        if tail_units:
            changes += sum(
                1
                for index in range(len(tail_units) - 1)
                if tail_units[index] != tail_units[index + 1]
            )
            if not pattern_units:
                changes += int(tail_units[-1] != tail_units[0])
        return changes / total

    def _waterfill(
        self,
        fixed: dict[str, float],
        flexible: dict[tuple[str, ...], float],
    ) -> dict[str, float]:
        """Assign flexible occupancy to equalize per-pipe load."""
        loads = dict(fixed)
        for units, amount in flexible.items():
            pipes = {name: self._unit_pipes[name] for name in units}
            remaining = amount
            # Iteratively raise the common per-pipe level across the
            # candidate units until the flexible occupancy is consumed.
            for _ in range(16):
                if remaining <= 1e-12:
                    break
                level = max(loads[name] / pipes[name] for name in units)
                target = level + remaining / sum(pipes.values())
                for name in units:
                    add = min(
                        remaining, max(0.0, target * pipes[name] - loads[name])
                    )
                    loads[name] += add
                    remaining -= add
        return loads

    def _dependency_bound(self, kernel: Kernel) -> float:
        """Exact maximum cycle mean of the (functional) dependence graph.

        Each slot has at most one producer edge, so every dependence
        cycle is discovered by walking producer chains once, tracking
        accumulated latency and iteration-boundary crossings.
        """
        instructions = kernel.instructions
        size = len(instructions)
        state = [0] * size  # 0 unvisited, 1 in current walk, 2 done
        best = 0.0

        for start in range(size):
            if state[start] != 0:
                continue
            path: list[int] = []
            position: dict[int, int] = {}
            weights: list[float] = []
            crossings: list[int] = []
            node = start
            while True:
                if state[node] == 2:
                    break
                if node in position:
                    # Found a cycle: slice the walk from its first visit.
                    cycle_start = position[node]
                    weight = sum(weights[cycle_start:])
                    crossing = sum(crossings[cycle_start:])
                    if crossing > 0:
                        best = max(best, weight / crossing)
                    break
                position[node] = len(path)
                path.append(node)
                distance = instructions[node].dep_distance
                if distance is None:
                    break
                producer_index = node - distance
                crossings.append(-(producer_index // size) if producer_index < 0 else 0)
                producer = producer_index % size
                weights.append(self._effective_latency(instructions[producer]))
                node = producer
            for visited in path:
                state[visited] = 2
        return best

    def _effective_latency(self, instruction: KernelInstruction) -> float:
        """Producer latency including the memory-level residency."""
        latency = self._row(instruction.mnemonic).latency
        source = instruction.source_level
        if source is not None and source != self._l1_name:
            latency += (
                self._level_latency[source] - self._level_latency[self._l1_name]
            )
        return latency

    # -- reference path (pre-engine, per-instruction) ----------------------------
    #
    # The naive O(loop size) implementation the summary path replaced.
    # Kept as the executable specification: the invariance tests assert
    # the fast path reproduces it to float precision on arbitrary
    # kernels, periodic or not.

    def reference_bounds(self, kernel: Kernel, smt: int = 1) -> PipelineBounds:
        """Per-instruction-walk bounds (executable specification)."""
        share = self._share(smt)
        dispatch = len(kernel) / self.arch.chip.dispatch_width * share
        unit = self._unit_bound(kernel) * share
        dependency = self._dependency_bound(kernel)
        memory = self._memory_bound(kernel) * share
        return PipelineBounds(
            dispatch=dispatch, unit=unit, dependency=dependency, memory=memory
        )

    def reference_activity(self, kernel: Kernel, smt: int = 1) -> ThreadActivity:
        """Per-instruction-walk activity (executable specification)."""
        period = self.reference_bounds(kernel, smt).period
        frequency = self.arch.chip.cycles_per_second
        iterations_per_second = frequency / period

        insn_rates: dict[str, float] = {}
        for instruction in kernel.instructions:
            insn_rates[instruction.mnemonic] = (
                insn_rates.get(instruction.mnemonic, 0.0)
                + iterations_per_second
            )
        unit_ops = self._unit_ops(kernel)
        unit_op_rates = {
            unit: ops * iterations_per_second for unit, ops in unit_ops.items()
        }
        level_counts = self._level_counts(kernel)
        level_rates = {
            level: count * iterations_per_second
            for level, count in level_counts.items()
        }
        return ThreadActivity(
            ipc=len(kernel) / period,
            insn_rates=insn_rates,
            unit_op_rates=unit_op_rates,
            level_rates=level_rates,
            alternation=self.reference_alternation(kernel),
            entropy=kernel.operand_entropy,
        )

    def reference_alternation(self, kernel: Kernel) -> float:
        """Per-instruction-walk alternation (executable specification)."""
        units = [
            self._primary_unit(self.arch.props(ins.mnemonic))
            for ins in kernel.instructions
        ]
        units = [unit for unit in units if unit is not None]
        if len(units) < 2:
            return 0.0
        pairs = len(units)
        changes = sum(
            1 for index in range(pairs)
            if units[index] != units[(index + 1) % pairs]
        )
        return changes / pairs

    def _props(self, mnemonic: str) -> InstructionProperties:
        return self.arch.props(mnemonic)

    @staticmethod
    def _primary_unit(props: InstructionProperties) -> str | None:
        if not props.usages:
            return None
        return props.usages[0].units[0]

    def _unit_occupancies(
        self, kernel: Kernel
    ) -> tuple[dict[str, float], dict[tuple[str, ...], float]]:
        """Fixed per-unit occupancy plus flexible occupancy per unit set."""
        fixed: dict[str, float] = {name: 0.0 for name in self.arch.units}
        flexible: dict[tuple[str, ...], float] = {}
        for instruction in kernel.instructions:
            props = self._props(instruction.mnemonic)
            for position, usage in enumerate(props.usages):
                occupancy = (
                    props.inv_throughput * usage.ops
                    if position == 0
                    else SECONDARY_OCCUPANCY * usage.ops
                )
                if usage.is_flexible:
                    flexible[usage.units] = (
                        flexible.get(usage.units, 0.0) + occupancy
                    )
                else:
                    fixed[usage.units[0]] += occupancy
        return fixed, flexible

    def _unit_bound(self, kernel: Kernel) -> float:
        fixed, flexible = self._unit_occupancies(kernel)
        loads = self._waterfill(fixed, flexible)
        return max(
            loads[name] / self.arch.unit(name).pipes for name in loads
        ) if loads else 0.0

    def _unit_ops(self, kernel: Kernel) -> dict[str, float]:
        """Operations per iteration per unit (flexible ops assigned).

        Flexible operations are split across their candidate units in
        proportion to the occupancy the water-filling assigned there.
        """
        fixed_ops: dict[str, float] = {name: 0.0 for name in self.arch.units}
        flexible_ops: dict[tuple[str, ...], float] = {}
        for instruction in kernel.instructions:
            props = self._props(instruction.mnemonic)
            for usage in props.usages:
                if usage.is_flexible:
                    flexible_ops[usage.units] = (
                        flexible_ops.get(usage.units, 0.0) + usage.ops
                    )
                else:
                    fixed_ops[usage.units[0]] += usage.ops

        fixed_occ, flexible_occ = self._unit_occupancies(kernel)
        filled = self._waterfill(fixed_occ, flexible_occ)
        return self._split_flexible_ops(
            fixed_ops, flexible_ops, fixed_occ, filled
        )

    def _memory_bound(self, kernel: Kernel) -> float:
        """Miss-bandwidth bound: total off-L1 latency over the MSHRs."""
        total_latency = 0.0
        l1_latency = self._level_latency[self._l1_name]
        for instruction in kernel.instructions:
            source = instruction.source_level
            if source is None or source == self._l1_name:
                continue
            total_latency += self._level_latency[source] - l1_latency
        return total_latency / MSHRS_PER_THREAD

    def _level_counts(self, kernel: Kernel) -> dict[str, float]:
        """Per-iteration access counts per hierarchy level, plus
        ``_loads``/``_stores`` pseudo-levels for the L1 reference PMCs."""
        counts: dict[str, float] = {}
        for instruction in kernel.instructions:
            source = instruction.source_level
            if source is None:
                continue
            counts[source] = counts.get(source, 0.0) + 1
            isa_def = self.arch.isa.instruction(instruction.mnemonic)
            key = "_stores" if isa_def.is_store else "_loads"
            counts[key] = counts.get(key, 0.0) + 1
        return counts
