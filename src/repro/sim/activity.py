"""ThreadActivity: the per-hardware-thread steady-state activity vector.

This is the interface between the performance side of the machine (the
pipeline model or a workload profile) and the hidden power model plus
the performance-counter synthesizer.  Everything is expressed as
per-second rates so configurations and durations compose trivially.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ThreadActivity:
    """Steady-state activity of one hardware thread.

    Attributes:
        ipc: Committed instructions per cycle.
        insn_rates: Instructions per second, by mnemonic.  Empty for
            profiled workloads that only know unit-level rates.
        unit_op_rates: Operations per second injected into each
            functional unit (flexible ops already assigned).
        level_rates: Accesses per second sourced by each memory
            hierarchy level.
        alternation: Fraction of adjacent instruction pairs executing
            on different functional units (0 blocked .. 1 interleaved).
            Drives switching power in the hidden model.
        entropy: Operand-data switching activity in [0, 1].
        unit_energy_bias: Per-unit multiplicative energy bias of this
            workload's instruction mix relative to a generic mix;
            profiles use it, kernels leave it empty (their mix is known
            mnemonic by mnemonic).
    """

    ipc: float
    insn_rates: dict[str, float] = field(default_factory=dict)
    unit_op_rates: dict[str, float] = field(default_factory=dict)
    level_rates: dict[str, float] = field(default_factory=dict)
    alternation: float = 0.0
    entropy: float = 1.0
    unit_energy_bias: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.ipc < 0:
            raise ValueError("ipc must be non-negative")
        if not 0.0 <= self.alternation <= 1.0:
            raise ValueError("alternation must be within [0, 1]")
        if not 0.0 <= self.entropy <= 1.0:
            raise ValueError("entropy must be within [0, 1]")

    @property
    def instruction_rate(self) -> float:
        """Total committed instructions per second."""
        if self.insn_rates:
            return sum(self.insn_rates.values())
        return sum(self.unit_op_rates.values())

    def at_frequency_scale(self, freq_scale: float) -> "ThreadActivity":
        """Activity re-clocked to a scaled frequency.

        Per-second rates scale with the clock while per-cycle
        quantities (IPC) and stream shape (alternation, entropy, bias)
        do not -- this is the performance half of a DVFS p-state; the
        ``V^2`` power half lives in the hidden power model.  The
        nominal scale returns ``self`` unchanged so pre-DVFS paths
        stay bit-identical.
        """
        if freq_scale == 1.0:
            return self
        return ThreadActivity(
            ipc=self.ipc,
            insn_rates={
                k: v * freq_scale for k, v in self.insn_rates.items()
            },
            unit_op_rates={
                k: v * freq_scale for k, v in self.unit_op_rates.items()
            },
            level_rates={
                k: v * freq_scale for k, v in self.level_rates.items()
            },
            alternation=self.alternation,
            entropy=self.entropy,
            unit_energy_bias=dict(self.unit_energy_bias),
        )

    def scaled(self, factor: float) -> "ThreadActivity":
        """Activity with every rate multiplied by ``factor``."""
        return ThreadActivity(
            ipc=self.ipc * factor,
            insn_rates={k: v * factor for k, v in self.insn_rates.items()},
            unit_op_rates={
                k: v * factor for k, v in self.unit_op_rates.items()
            },
            level_rates={k: v * factor for k, v in self.level_rates.items()},
            alternation=self.alternation,
            entropy=self.entropy,
            unit_energy_bias=dict(self.unit_energy_bias),
        )
