"""Array-backed evaluation plane: whole measurement plans as tensors.

The scalar walk (:meth:`repro.sim.machine.Machine._measure`) evaluates
one (kernel, configuration, window) cell at a time through per-mnemonic
dict arithmetic.  This module compiles the same analytic state into
dense NumPy arrays and evaluates an entire plan's worth of cells --
spanning *different* configurations, heterogeneous
:class:`~repro.sim.topology.ChipTopology` chips and windows -- in one
vectorized pass.

The unit of execution is a **fused per-lane tensor program**
(:class:`_FusedProgram`): one batch of cells compiles -- once -- into

* a **packed** form of :class:`~repro.sim.summary.KernelSummary` --
  fixed unit/level/counter index spaces derived from the architecture,
  with each kernel's occupancy/operation/level-count vectors stored as
  small dense arrays (:class:`PackedKernel`, LRU-memoized by kernel
  digest);
* packed kernels stacked into ``(kernels x units)`` / ``(kernels x
  levels)`` matrices, memoized under a **canonical (digest-sorted)
  batch key** so permuted compositions of the same kernel set share
  one stack, and gathered per cell by row index at compile time;
* per-configuration scalar **broadcast tables** (SMT share, frequency
  scale, effective clock, static power, dynamic V^2 scale) repeated
  across each configuration's cell span, computed once per ladder in
  plain Python with bit-for-bit the scalar walk's arithmetic;
* the per-cell ``stable_seed`` values and their sensor draw constants
  (resolved through the sensor draw cache, see
  :func:`repro.sim.sensors.draw_constants`), bucketed per window
  length;
* one :class:`_Lane` of index spaces *per core class*: heterogeneous
  topology cells evaluate cluster by cluster through each cluster core
  class's own lane (its own widths, unit mix, cache latencies, clock
  and energy scale).

Executing the program then runs the steady-state bounds, activity,
performance-counter synthesis, hidden-power and sensor stages as *one
fused pass per lane* -- pure elementwise tensor arithmetic with no
Python orchestration between stages -- and assembles Measurements
through a lazy counters view that defers per-cell dict
materialization until a reader asks.  ``Machine.run_plan`` keys
compiled programs weakly by plan object, so a resident campaign
(service engines, perf-bench steady state, DSE loops) re-executes the
same plan at tensor speed with zero recompilation.

**Bit-identity contract.**  Every floating-point operation of the
scalar walk is replayed here with the same operand values in the same
order (IEEE-754 double arithmetic is deterministic, and NumPy
elementwise ops round exactly like Python floats), and reductions whose
accumulation order matters (the per-mnemonic energy sums, the
per-thread dynamic-power sum, the per-cluster dynamic accumulation)
are evaluated as explicit sequential adds rather than ``np.sum``
(whose pairwise blocking would re-associate them).  The vectorized
path therefore produces *bit-identical* Measurements -- counters,
powers and sensor noise draws -- to the scalar reference, which stays
in place as the executable specification and property-test oracle
(``tests/sim/test_vector_plane.py``,
``tests/sim/test_heterogeneous_machine.py``).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from weakref import WeakKeyDictionary
from zlib import crc32

import numpy as np

from repro.caching import LRUCache
from repro.measure.measurement import Measurement
from repro.sim.config import MachineConfig
from repro.sim.kernel import Kernel
from repro.sim.pipeline import MSHRS_PER_THREAD, SMT_OVERHEAD
from repro.sim.power import (
    CMP_CONCAVE,
    CMP_EXPONENT,
    CMP_LINEAR,
    IDLE_POWER,
    LEVEL_ENERGY_NJ,
    SMT_LOGIC,
    UNCORE_ACTIVE,
    cmp_effect,
    data_multiplier,
    order_multiplier,
)
from repro.sim.sensors import (
    QUANTUM_W,
    SAMPLE_INTERVAL_S,
    SAMPLE_NOISE_W,
    draw_constants,
)
from repro.sim.topology import ChipTopology

#: Packed kernels retained per lane (LRU past this).
PACKED_CACHE_LIMIT = 65_536
#: Stacked batch matrices retained per lane (LRU past this); a
#: configuration sweep re-uses one stack across its whole ladder.
STACK_CACHE_LIMIT = 256
#: Below this many kernel cells the scalar walk is faster than the
#: tensor pass's fixed setup cost.  Both paths are bit-identical, so
#: this is purely a latency knob.
MIN_VECTOR_BATCH = 8


class PackedKernel:
    """One kernel's summary, packed into dense index-space arrays."""

    __slots__ = (
        "digest",
        "size",
        "unit_bound",
        "dependency_bound",
        "miss_latency",
        "alternation",
        "entropy",
        "active",
        "insn_e9",
        "insn_counts",
        "unit_ops",
        "counter_levels",
        "level_e9",
        "level_counts",
    )

    def __init__(self, summary, unit_names, counter_level_names, power_model):
        self.digest = summary.digest
        self.size = summary.size
        self.unit_bound = summary.unit_bound
        self.dependency_bound = summary.dependency_bound
        self.miss_latency = summary.miss_latency
        self.alternation = summary.alternation
        self.entropy = summary.entropy
        # Kernels always commit work (empty loop bodies are rejected at
        # construction); the flag guards the idle-power degenerate case
        # exactly as the scalar walk's activity check does.
        self.active = bool(summary.mnemonic_counts)
        # Per-mnemonic energies and counts, in the summary's dict
        # insertion order: the scalar energy sum iterates that order,
        # and sequential column adds must replay it term for term.
        items = list(summary.mnemonic_counts.items())
        self.insn_e9 = np.array(
            [power_model.instruction_energy(m) * 1e-9 for m, _ in items]
        )
        self.insn_counts = np.array([float(c) for _, c in items])
        self.unit_ops = np.array(
            [summary.unit_ops.get(name, 0.0) for name in unit_names]
        )
        self.counter_levels = np.array(
            [summary.level_counts.get(name, 0.0) for name in counter_level_names]
        )
        energy_levels = [
            (LEVEL_ENERGY_NJ[level] * 1e-9, float(count))
            for level, count in summary.level_counts.items()
            if level in LEVEL_ENERGY_NJ
        ]
        self.level_e9 = np.array([e for e, _ in energy_levels])
        self.level_counts = np.array([c for _, c in energy_levels])


class _KernelStack:
    """Matrices of one distinct kernel-set, shared across configurations."""

    __slots__ = (
        "size",
        "unit_bound",
        "dependency_bound",
        "miss_latency",
        "order_mult",
        "data_mult",
        "all_active",
        "active",
        "insn_e9",
        "insn_counts",
        "unit_ops",
        "counter_levels",
        "level_e9",
        "level_counts",
    )

    def __init__(self, packs: Sequence[PackedKernel]) -> None:
        count = len(packs)
        self.size = np.array([float(pack.size) for pack in packs])
        self.unit_bound = np.array([pack.unit_bound for pack in packs])
        self.dependency_bound = np.array(
            [pack.dependency_bound for pack in packs]
        )
        self.miss_latency = np.array([pack.miss_latency for pack in packs])
        # The order/data multipliers only depend on the kernel, so they
        # stack once per batch composition; computed with the exact
        # scalar helpers so each element carries the scalar's bits.
        self.order_mult = np.array(
            [order_multiplier(pack.alternation) for pack in packs]
        )
        self.data_mult = np.array(
            [data_multiplier(pack.entropy) for pack in packs]
        )
        self.active = np.array([pack.active for pack in packs])
        self.all_active = all(pack.active for pack in packs)
        # Ragged per-mnemonic/per-level vectors pad with trailing
        # zeros: a zero term adds exactly nothing to a non-negative
        # sequential sum, so padding never perturbs the accumulation.
        mnemonics = max((len(pack.insn_e9) for pack in packs), default=0)
        levels = max((len(pack.level_e9) for pack in packs), default=0)
        self.insn_e9 = np.zeros((count, mnemonics))
        self.insn_counts = np.zeros((count, mnemonics))
        self.level_e9 = np.zeros((count, levels))
        self.level_counts = np.zeros((count, levels))
        for row, pack in enumerate(packs):
            width = len(pack.insn_e9)
            self.insn_e9[row, :width] = pack.insn_e9
            self.insn_counts[row, :width] = pack.insn_counts
            depth = len(pack.level_e9)
            self.level_e9[row, :depth] = pack.level_e9
            self.level_counts[row, :depth] = pack.level_counts
        self.unit_ops = np.vstack([pack.unit_ops for pack in packs])
        self.counter_levels = np.vstack(
            [pack.counter_levels for pack in packs]
        )


def _sequential_row_sum(terms: np.ndarray) -> np.ndarray:
    """Left-to-right row sums, replaying Python's ``sum()`` exactly.

    ``np.sum`` uses pairwise blocking, which re-associates the
    floating-point adds; the scalar reference accumulates strictly left
    to right starting from zero, so the vector plane must too.
    """
    total = np.zeros(terms.shape[0])
    for column in range(terms.shape[1]):
        total = total + terms[:, column]
    return total


# -- lazy counter views -------------------------------------------------------
#
# At fused-program throughput the dominant per-cell cost is no longer
# arithmetic but *materializing* each cell's counter dict (16-odd
# float boxings plus a dict build per hardware-thread view).  The
# program instead hands每 measurement a lazy, read-only mapping over
# its row of the counters matrix: construction is one tuple allocation
# (matrix reference + row index), and values box to Python floats only
# when a reader actually asks.  The view satisfies the Mapping
# contract -- ``dict(view)``, ``items()``, ``get``, equality with the
# scalar walk's plain dicts -- and pickles/deep-copies *as* a plain
# dict, so worker-process results and serialized store records are
# indistinguishable from scalar-plane output.


class _LazyReadings(tuple):
    """Read-only counter mapping over one row of a counters matrix.

    Instances are 2-tuples ``(matrix, row)``; the counter-name schema
    lives on the subclass (one per lane counter layout), so per-cell
    construction is a single C-level tuple allocation.
    """

    __slots__ = ()
    _names: tuple = ()
    _column_of: dict = {}

    def _values(self) -> list:
        matrix = tuple.__getitem__(self, 0)
        return matrix[tuple.__getitem__(self, 1)].tolist()

    def __getitem__(self, key):
        matrix = tuple.__getitem__(self, 0)
        return float(
            matrix[tuple.__getitem__(self, 1), self._column_of[key]]
        )

    def get(self, key, default=None):
        column = self._column_of.get(key)
        if column is None:
            return default
        matrix = tuple.__getitem__(self, 0)
        return float(matrix[tuple.__getitem__(self, 1), column])

    def keys(self):
        return self._names

    def values(self):
        return self._values()

    def items(self):
        return list(zip(self._names, self._values()))

    def __iter__(self):
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, key) -> bool:
        return key in self._column_of

    def __eq__(self, other):
        if isinstance(other, _LazyReadings):
            return (
                self._names == other._names
                and self._values() == other._values()
            )
        if isinstance(other, Mapping):
            if len(other) != len(self._names):
                return False
            sentinel = object()
            get = other.get
            for name, value in zip(self._names, self._values()):
                found = get(name, sentinel)
                if found is sentinel or found != value:
                    return False
            return True
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # Mutable-mapping parity with the scalar walk's dicts: unhashable.
    __hash__ = None  # type: ignore[assignment]

    def __reduce__(self):
        # Pickle (worker pipes) and deepcopy materialize to the plain
        # dict the scalar walk would have produced.
        return (dict, (list(zip(self._names, self._values())),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(dict(zip(self._names, self._values())))


Mapping.register(_LazyReadings)

_READINGS_CLASSES: dict[tuple, type] = {}


def _readings_class(names: tuple) -> type:
    """The lazy-view subclass carrying one counter-name schema."""
    cls = _READINGS_CLASSES.get(names)
    if cls is None:
        cls = type(
            "_LazyReadingsView",
            (_LazyReadings,),
            {
                "__slots__": (),
                "_names": names,
                "_column_of": {
                    name: column for column, name in enumerate(names)
                },
            },
        )
        _READINGS_CLASSES[names] = cls
    return cls


class _Lane:
    """One core class's index spaces, packs and stacks.

    The homogeneous machine is the single base lane; each additional
    cluster core class of a heterogeneous topology gets its own lane,
    so kernels pack against the right unit mix, cache latencies,
    dispatch width, clock and energy scale.
    """

    __slots__ = (
        "arch",
        "pipeline",
        "power",
        "width",
        "frequency",
        "energy_scale",
        "unit_names",
        "counter_names",
        "counter_level_names",
        "readings_cls",
        "packed",
        "stacks",
    )

    def __init__(self, arch, pipeline, power_model, tag: str) -> None:
        self.arch = arch
        self.pipeline = pipeline
        self.power = power_model
        self.width = arch.chip.dispatch_width
        self.frequency = arch.chip.cycles_per_second
        self.energy_scale = arch.chip.energy_scale
        self.unit_names = tuple(arch.units)
        # Fixed counter layout: exactly the key order
        # ``counters_from_activity`` emits.
        names = ["PM_RUN_CYC", "PM_RUN_INST_CMPL"]
        names.extend(unit.counter for unit in arch.units.values())
        names.extend(["PM_LD_REF_L1", "PM_ST_REF_L1"])
        names.extend(cache.counter for cache in arch.caches[1:])
        names.append(arch.memory.counter)
        self.counter_names = tuple(names)
        self.readings_cls = _readings_class(self.counter_names)
        # The hierarchy levels backing the level-derived counters, in
        # the same column order as the counter tail above.
        self.counter_level_names = (
            "_loads",
            "_stores",
            *(cache.name for cache in arch.caches[1:]),
            arch.memory.name,
        )
        self.packed: LRUCache[int, PackedKernel] = LRUCache(
            PACKED_CACHE_LIMIT, f"vector.packed{tag}"
        )
        self.stacks: LRUCache[tuple, _KernelStack] = LRUCache(
            STACK_CACHE_LIMIT, f"vector.stacks{tag}"
        )

    def pack(self, kernel: Kernel) -> PackedKernel:
        digest = kernel.digest()
        pack = self.packed.get(digest)
        if pack is None:
            pack = PackedKernel(
                self.pipeline.summarize(kernel),
                self.unit_names,
                self.counter_level_names,
                self.power,
            )
            self.packed.put(digest, pack)
        return pack

    def stack(self, kernels: Sequence[Kernel]) -> tuple[_KernelStack, list[int]]:
        """``(stack, remap)`` for a kernel batch, canonically keyed.

        The memo key is the *digest-sorted* composition, so permuted
        batches of the same kernel (multi)set share one stack instead
        of restacking per arrival order; ``remap[i]`` is the canonical
        stack row of input kernel ``i``.  Rows with equal digests are
        interchangeable by construction (packs memoize per digest), so
        the canonical stack is identical whichever order produced it.
        """
        packs = [self.pack(kernel) for kernel in kernels]
        order = sorted(range(len(packs)), key=lambda i: packs[i].digest)
        key = tuple(packs[i].digest for i in order)
        stack = self.stacks.get(key)
        if stack is None:
            stack = _KernelStack([packs[i] for i in order])
            self.stacks.put(key, stack)
        remap = [0] * len(packs)
        for row, index in enumerate(order):
            remap[index] = row
        return stack, remap


class _Group:
    """One (configuration, window) span of a cell batch."""

    __slots__ = ("config", "duration", "cells")

    def __init__(self, config, duration: float) -> None:
        self.config = config
        self.duration = duration
        self.cells: list[int] = []  # positions in the kernel-cell order


def _group_span(cells, span: Sequence[int]):
    """Group one homogeneity class of kernel cells for compilation.

    Returns ``(kernels, cell_rows, groups)``: unique kernels by
    measurement identity (the noise seed folds in the workload *name*
    and content digest, so two equal-content kernels under different
    names stay distinct), each span cell's unique-kernel row, and the
    (configuration, window) groups in first-seen order.  Grouping is
    purely an evaluation-shape choice -- every cell's result is an
    independent pure function of its own content -- so object-identity
    grouping (plans reuse config objects, and hashing a MachineConfig
    per cell is costly) is always sound; equal configs arriving as
    distinct objects just form separate, identically-evaluated spans.
    """
    groups: dict[tuple, _Group] = {}
    unique_of: dict[tuple, int] = {}
    kernels: list[Kernel] = []
    cell_rows: list[int] = []
    for index in span:
        workload, config, duration = cells[index]
        group_key = (id(config), duration)
        group = groups.get(group_key)
        if group is None:
            group = groups[group_key] = _Group(config, duration)
        key = (workload.name, workload.digest())
        row = unique_of.get(key)
        if row is None:
            row = len(kernels)
            unique_of[key] = row
            kernels.append(workload)
        group.cells.append(len(cell_rows))
        cell_rows.append(row)
    return kernels, cell_rows, list(groups.values())


def _sensor_buckets(groups, group_sizes, seeds):
    """Per-window sensor tables: positions, draw constants, sigma.

    Windows can differ across groups; draws are per-cell-seeded, so
    bucketing by duration cannot change them.  Draw constants resolve
    once at compile time through the sensor draw cache (vectorized
    MT19937 seeding for wide fresh batches), leaving the program's
    per-execution sensor stage pure elementwise arithmetic.
    """
    by_duration: dict[float, tuple[list[int], list[int]]] = {}
    position = 0
    for group, count in zip(groups, group_sizes):
        bucket = by_duration.setdefault(group.duration, ([], []))
        bucket[0].extend(range(position, position + count))
        bucket[1].extend(seeds[position : position + count])
        position += count
    buckets = []
    for duration, (positions, bucket_seeds) in by_duration.items():
        sample_count = max(1, int(duration / SAMPLE_INTERVAL_S))
        sigma = SAMPLE_NOISE_W / sample_count ** 0.5
        zo1, z2 = draw_constants(bucket_seeds)
        buckets.append(
            (np.asarray(positions, dtype=np.intp), zo1, z2, sigma)
        )
    return buckets


def _apply_sensor(power, buckets) -> list[float]:
    """The fused sensor stage: cached draws applied elementwise.

    Replays ``PowerSensor.measure_batch``'s arithmetic exactly:
    ``mean = (p + zo1*p) + (0.0 + z2*sigma)``, quantized half-even to
    the sensor quantum (``np.round`` rounds exactly like ``round``).
    """
    means = np.empty(power.shape[0])
    for positions, zo1, z2, sigma in buckets:
        p = power[positions]
        mean = (p + zo1 * p) + (0.0 + z2 * sigma)
        means[positions] = np.round(mean / QUANTUM_W) * QUANTUM_W
    return means.tolist()


class _FusedSpan:
    """Fused program for the homogeneous (MachineConfig) cells of a batch.

    Compilation precomputes every plan-constant table -- the canonical
    kernel stack gathered per cell, the per-ladder config-scalar
    broadcast tables, seeds and sensor draw constants -- so execution
    is the physics stages (bounds, counters, hidden power), the fused
    sensor pass and Measurement assembly, with no grouping, hashing,
    seeding or stacking left on the hot path.
    """

    __slots__ = (
        "lane",
        "machine",
        "cell_count",
        "targets",
        "cell_names",
        "share",
        "fs",
        "freq_eff",
        "window",
        "dyn_scale",
        "static_power",
        "g_size",
        "g_unit_bound",
        "g_dep_bound",
        "g_miss_latency",
        "g_unit_ops",
        "g_counter_levels",
        "g_insn_e9",
        "g_insn_counts",
        "g_level_e9",
        "g_level_counts",
        "g_order_mult",
        "g_data_mult",
        "g_active",
        "all_active",
        "thread_segments",
        "sensor_buckets",
        "assembly",
    )

    def __init__(self, plane: "VectorPlane", cells, span: Sequence[int]) -> None:
        lane = plane._base
        machine = plane.machine
        self.lane = lane
        self.machine = machine
        kernels, cell_rows, groups = _group_span(cells, span)
        stack, remap = lane.stack(kernels)
        machine_seed = machine.seed
        machine_frequency = machine.frequency

        # Per-configuration scalars, computed once per group in plain
        # Python (bit-for-bit the scalar walk's arithmetic) and
        # repeated across the group's cell span: the broadcast tables.
        group_sizes = []
        share_g, fs_g, freq_eff_g, duration_g = [], [], [], []
        dyn_scale_g, static_g = [], []
        scatter: list[int] = []  # tensor position -> span cell position
        assembly = []
        thread_segments = []
        position = 0
        for group in groups:
            config = group.config
            p_state = config.p_state
            count = len(group.cells)
            group_sizes.append(count)
            scatter.extend(group.cells)
            share_g.append(config.smt / (1.0 - SMT_OVERHEAD[config.smt]))
            fs_g.append(p_state.freq_scale)
            freq_eff_g.append(machine_frequency * p_state.freq_scale)
            duration_g.append(group.duration)
            dyn_scale_g.append(
                1.0 if p_state.is_nominal else p_state.dynamic_scale
            )
            static = IDLE_POWER
            static += UNCORE_ACTIVE
            static += cmp_effect(config.cores)
            if config.smt_enabled:
                static += SMT_LOGIC * config.cores
            static_g.append(static)
            sample_count = max(1, int(group.duration / SAMPLE_INTERVAL_S))
            assembly.append(
                (
                    position,
                    position + count,
                    config,
                    group.duration,
                    config.threads,
                    sample_count,
                )
            )
            thread_segments.append(
                (position, position + count, config.threads)
            )
            position += count

        self.cell_count = len(cell_rows)
        rows = np.asarray(cell_rows, dtype=np.intp)
        order = np.asarray(scatter, dtype=np.intp)
        span_rows = rows[order]  # tensor position -> unique kernel row
        krows = np.asarray(remap, dtype=np.intp)[span_rows]
        repeats = np.asarray(group_sizes)
        self.share = np.repeat(np.asarray(share_g), repeats)
        self.fs = np.repeat(np.asarray(fs_g), repeats)[:, None]
        self.freq_eff = np.repeat(np.asarray(freq_eff_g), repeats)
        self.window = np.repeat(np.asarray(duration_g), repeats)
        self.dyn_scale = np.repeat(np.asarray(dyn_scale_g), repeats)
        self.static_power = np.repeat(np.asarray(static_g), repeats)
        self.thread_segments = thread_segments
        self.assembly = assembly

        # Tensor position -> caller batch index, for direct writes.
        self.targets = [span[index] for index in scatter]

        # Plan-constant gathers of the canonical stack (fancy indexing
        # copies, so LRU eviction of the stack cannot alias us).
        self.g_size = stack.size[krows]
        self.g_unit_bound = stack.unit_bound[krows]
        self.g_dep_bound = stack.dependency_bound[krows]
        self.g_miss_latency = stack.miss_latency[krows]
        self.g_unit_ops = stack.unit_ops[krows]
        self.g_counter_levels = stack.counter_levels[krows]
        self.g_insn_e9 = stack.insn_e9[krows]
        self.g_insn_counts = stack.insn_counts[krows]
        self.g_level_e9 = stack.level_e9[krows]
        self.g_level_counts = stack.level_counts[krows]
        self.g_order_mult = stack.order_mult[krows]
        self.g_data_mult = stack.data_mult[krows]
        self.g_active = stack.active[krows]
        self.all_active = stack.all_active

        # Sensor plane: per-cell stable_seed draws, exactly as the
        # scalar walk salts them (workload name, configuration label,
        # window, machine seed, kernel digest).
        names = [kernel.name for kernel in kernels]
        digests = [kernel.digest() for kernel in kernels]
        span_rows_list = span_rows.tolist()
        self.cell_names = [names[row] for row in span_rows_list]
        seeds = []
        position = 0
        for group, count in zip(groups, group_sizes):
            mid = f"|{group.config.label}|{group.duration}|{machine_seed}|"
            for row in span_rows_list[position : position + count]:
                seeds.append(
                    crc32(f"{names[row]}{mid}{digests[row]}".encode())
                )
            position += count
        self.sensor_buckets = _sensor_buckets(groups, group_sizes, seeds)

    def execute(self, out: list) -> None:
        """One fused pass: physics, sensors, assembly, in lane order."""
        lane = self.lane
        share = self.share
        fs_col = self.fs
        window = self.window
        window_col = window[:, None]

        # Steady-state bounds and period (same operand order as
        # bounds_from_summary), from the compile-time gathers.
        size = self.g_size
        dispatch = (size / lane.width) * share
        unit = self.g_unit_bound * share
        memory = (self.g_miss_latency / MSHRS_PER_THREAD) * share
        period = np.maximum(
            np.maximum(dispatch, unit),
            np.maximum(self.g_dep_bound, memory),
        )
        iterations = lane.frequency / period
        ipc = size / period

        # Performance counters: a (cells x counters) matrix in the
        # scalar synthesizer's exact column order and operand order
        # (rate = (per-iteration count * iterations) * freq_scale, then
        # * duration).
        rate_scale = iterations[:, None]
        unit_block = (
            (self.g_unit_ops * rate_scale) * fs_col
        ) * window_col
        level_block = (
            (self.g_counter_levels * rate_scale) * fs_col
        ) * window_col
        counter_names = lane.counter_names
        counters = np.empty((self.cell_count, len(counter_names)))
        counters[:, 0] = self.freq_eff * window
        counters[:, 1] = (ipc * self.freq_eff) * window
        units = len(lane.unit_names)
        counters[:, 2 : 2 + units] = unit_block
        counters[:, 2 + units :] = level_block

        # Hidden power: per-thread dynamic watts, then the chip sum.
        insn_terms = self.g_insn_e9 * (
            (self.g_insn_counts * rate_scale) * fs_col
        )
        core_joules = _sequential_row_sum(insn_terms)
        level_terms = self.g_level_e9 * (
            (self.g_level_counts * rate_scale) * fs_col
        )
        level_joules = _sequential_row_sum(level_terms)
        thread_dynamic = (
            self.g_order_mult * self.g_data_mult
        ) * core_joules + self.g_data_mult * level_joules
        # A machine whose *base* class declares a dynamic-energy scale
        # (running the eco definition directly, as per-cluster
        # campaigns do) scales here exactly like the scalar walk's
        # thread_dynamic_power.
        if lane.energy_scale != 1.0:
            thread_dynamic = thread_dynamic * lane.energy_scale
        # The scalar walk sums the identical per-thread power once per
        # hardware thread; replay that accumulation exactly (the thread
        # count is constant per configuration segment).
        dynamic = np.empty(self.cell_count)
        for start, stop, threads in self.thread_segments:
            segment = thread_dynamic[start:stop]
            acc = np.zeros(stop - start)
            for _ in range(threads):
                acc = acc + segment
            dynamic[start:stop] = acc
        dynamic = dynamic * self.dyn_scale
        power = self.static_power + dynamic
        if not self.all_active:
            power = np.where(self.g_active, power, IDLE_POWER)

        # Fused sensor stage from the compile-time draw constants.
        means = _apply_sensor(power, self.sensor_buckets)

        # Assembly: validation-free Measurement construction (the
        # plane guarantees the invariants) around lazy counter views.
        new = object.__new__
        measurement_cls = Measurement
        readings_cls = lane.readings_cls
        names = self.cell_names
        targets = self.targets
        for start, stop, config, duration, threads, sample_count in (
            self.assembly
        ):
            prototype = {
                "workload_name": None,
                "config": config,
                "duration": duration,
                "thread_counters": None,
                "mean_power": 0.0,
                "power_std": SAMPLE_NOISE_W,
                "sample_count": sample_count,
                "thread_workloads": None,
            }
            fresh = prototype.copy
            for position in range(start, stop):
                fields = fresh()
                fields["workload_name"] = names[position]
                fields["thread_counters"] = (
                    readings_cls((counters, position)),
                ) * threads
                fields["mean_power"] = means[position]
                measurement = new(measurement_cls)
                measurement.__dict__.update(fields)
                out[targets[position]] = measurement


class _FusedTopoSpan:
    """Fused program for the heterogeneous (ChipTopology) cells.

    Each (topology, window) group evaluates cluster by cluster through
    the cluster core class's lane, replaying the scalar topology walk
    exactly: static chip power accumulated in plain Python floats, each
    cluster's per-thread dynamic power summed by sequential adds and
    ``V^2``-scaled by its own operating point, counters synthesized at
    each cluster's effective clock.  All grouping, stacking, gathers,
    per-cluster scalars, seeds and draw constants resolve at compile
    time; execution is one fused pass per (group, lane).
    """

    __slots__ = (
        "machine",
        "cell_count",
        "targets",
        "cell_names",
        "group_runs",
        "sensor_buckets",
    )

    def __init__(self, plane: "VectorPlane", cells, span: Sequence[int]) -> None:
        machine = plane.machine
        self.machine = machine
        kernels, cell_rows, groups = _group_span(cells, span)
        machine_seed = machine.seed
        names = [kernel.name for kernel in kernels]
        digests = [kernel.digest() for kernel in kernels]
        rows = np.asarray(cell_rows, dtype=np.intp)

        self.cell_count = len(cell_rows)
        scatter: list[int] = []
        group_sizes: list[int] = []
        seeds: list[int] = []
        cell_names: list[str] = []
        group_runs = []
        position = 0
        for group in groups:
            topology: ChipTopology = group.config
            duration = group.duration
            count = len(group.cells)
            group_sizes.append(count)
            scatter.extend(group.cells)
            group_rows = rows[np.asarray(group.cells, dtype=np.intp)]

            # Static chip power: plain-float accumulation in the exact
            # order of power.topology_power (concave CMP part over the
            # total core count, the linear per-core part per cluster
            # scaled by its class's energy scale).
            static = IDLE_POWER
            static += UNCORE_ACTIVE
            static += CMP_CONCAVE * topology.cores ** CMP_EXPONENT
            for cluster in topology.clusters:
                lane = plane._lane(cluster.core_class)
                static += CMP_LINEAR * cluster.cores * lane.energy_scale
                if cluster.smt_enabled:
                    static += SMT_LOGIC * cluster.cores

            g_active = None
            all_active = True
            clusters = []
            for cluster in topology.clusters:
                lane = plane._lane(cluster.core_class)
                stack, remap = lane.stack(kernels)
                krows = np.asarray(remap, dtype=np.intp)[group_rows]
                if g_active is None:
                    g_active = stack.active[krows]
                    all_active = stack.all_active
                p_state = cluster.p_state
                clusters.append(
                    {
                        "lane": lane,
                        "share": cluster.smt
                        / (1.0 - SMT_OVERHEAD[cluster.smt]),
                        "fs": p_state.freq_scale,
                        "freq_eff": lane.frequency * p_state.freq_scale,
                        "threads": cluster.threads,
                        "dyn_scale": (
                            None
                            if p_state.is_nominal
                            else p_state.dynamic_scale
                        ),
                        "size": stack.size[krows],
                        "unit_bound": stack.unit_bound[krows],
                        "dep_bound": stack.dependency_bound[krows],
                        "miss_latency": stack.miss_latency[krows],
                        "unit_ops": stack.unit_ops[krows],
                        "counter_levels": stack.counter_levels[krows],
                        "insn_e9": stack.insn_e9[krows],
                        "insn_counts": stack.insn_counts[krows],
                        "level_e9": stack.level_e9[krows],
                        "level_counts": stack.level_counts[krows],
                        "order_mult": stack.order_mult[krows],
                        "data_mult": stack.data_mult[krows],
                    }
                )

            sample_count = max(1, int(duration / SAMPLE_INTERVAL_S))
            group_runs.append(
                {
                    "start": position,
                    "stop": position + count,
                    "config": topology,
                    "duration": duration,
                    "static": static,
                    "active": g_active,
                    "all_active": all_active,
                    "clusters": clusters,
                    "sample_count": sample_count,
                }
            )

            mid = f"|{topology.label}|{duration}|{machine_seed}|"
            for row in krows_names_rows(group_rows):
                seeds.append(
                    crc32(f"{names[row]}{mid}{digests[row]}".encode())
                )
                cell_names.append(names[row])
            position += count

        self.targets = [span[index] for index in scatter]
        self.cell_names = cell_names
        self.group_runs = group_runs
        self.sensor_buckets = _sensor_buckets(groups, group_sizes, seeds)

    def execute(self, out: list) -> None:
        power = np.empty(self.cell_count)
        per_group_state = []
        for run in self.group_runs:
            start, stop = run["start"], run["stop"]
            count = stop - start
            duration = run["duration"]
            group_power = np.full(count, run["static"])
            cluster_views = []
            for cluster in run["clusters"]:
                lane = cluster["lane"]
                share = cluster["share"]
                fs = cluster["fs"]
                size = cluster["size"]
                dispatch = (size / lane.width) * share
                unit = cluster["unit_bound"] * share
                memory = (
                    cluster["miss_latency"] / MSHRS_PER_THREAD
                ) * share
                period = np.maximum(
                    np.maximum(dispatch, unit),
                    np.maximum(cluster["dep_bound"], memory),
                )
                iterations = lane.frequency / period
                ipc = size / period
                rate_scale = iterations[:, None]

                # The cluster's counter block at its effective clock.
                unit_block = (
                    (cluster["unit_ops"] * rate_scale) * fs
                ) * duration
                level_block = (
                    (cluster["counter_levels"] * rate_scale) * fs
                ) * duration
                counters = np.empty((count, len(lane.counter_names)))
                counters[:, 0] = cluster["freq_eff"] * duration
                counters[:, 1] = (ipc * cluster["freq_eff"]) * duration
                units = len(lane.unit_names)
                counters[:, 2 : 2 + units] = unit_block
                counters[:, 2 + units :] = level_block
                cluster_views.append(
                    (lane.readings_cls, counters, cluster["threads"])
                )

                # The cluster's dynamic power.
                insn_terms = cluster["insn_e9"] * (
                    (cluster["insn_counts"] * rate_scale) * fs
                )
                core_joules = _sequential_row_sum(insn_terms)
                level_terms = cluster["level_e9"] * (
                    (cluster["level_counts"] * rate_scale) * fs
                )
                level_joules = _sequential_row_sum(level_terms)
                thread_dynamic = (
                    cluster["order_mult"] * cluster["data_mult"]
                ) * core_joules + cluster["data_mult"] * level_joules
                if lane.energy_scale != 1.0:
                    thread_dynamic = thread_dynamic * lane.energy_scale
                dynamic = np.zeros(count)
                for _ in range(cluster["threads"]):
                    dynamic = dynamic + thread_dynamic
                if cluster["dyn_scale"] is not None:
                    dynamic = dynamic * cluster["dyn_scale"]
                group_power = group_power + dynamic

            if not run["all_active"]:
                group_power = np.where(
                    run["active"], group_power, IDLE_POWER
                )
            power[start:stop] = group_power
            per_group_state.append(cluster_views)

        means = _apply_sensor(power, self.sensor_buckets)

        new = object.__new__
        measurement_cls = Measurement
        names = self.cell_names
        targets = self.targets
        for run, cluster_views in zip(self.group_runs, per_group_state):
            start, stop = run["start"], run["stop"]
            prototype = {
                "workload_name": None,
                "config": run["config"],
                "duration": run["duration"],
                "thread_counters": None,
                "mean_power": 0.0,
                "power_std": SAMPLE_NOISE_W,
                "sample_count": run["sample_count"],
                "thread_workloads": None,
            }
            fresh = prototype.copy
            for position in range(start, stop):
                offset = position - start
                thread_counters = ()
                for readings_cls, counters, threads in cluster_views:
                    thread_counters += (
                        readings_cls((counters, offset)),
                    ) * threads
                fields = fresh()
                fields["workload_name"] = names[position]
                fields["thread_counters"] = thread_counters
                fields["mean_power"] = means[position]
                measurement = new(measurement_cls)
                measurement.__dict__.update(fields)
                out[targets[position]] = measurement


def krows_names_rows(group_rows: np.ndarray) -> list[int]:
    """Unique-kernel row per group cell, as Python ints."""
    return group_rows.tolist()


class _FusedProgram:
    """A whole cell batch compiled to fused spans plus passthrough.

    Kernel cells -- homogeneous and topology spans alike -- execute as
    fused tensor passes; placements and protocol workloads re-measure
    through the scalar walk cell by cell (order preserved), exactly as
    the pre-fusion plane routed them.
    """

    __slots__ = ("machine", "size", "spans", "passthrough")

    def __init__(self, plane, cells, kernel_span, topo_span) -> None:
        self.machine = plane.machine
        self.size = len(cells)
        self.spans = []
        covered: set[int] = set()
        if kernel_span is not None:
            self.spans.append(_FusedSpan(plane, cells, kernel_span))
            covered.update(kernel_span)
        if topo_span is not None:
            self.spans.append(_FusedTopoSpan(plane, cells, topo_span))
            covered.update(topo_span)
        self.passthrough = [
            (index, cells[index])
            for index in range(len(cells))
            if index not in covered
        ]

    def execute(self) -> list[Measurement]:
        out: list[Measurement] = [None] * self.size  # type: ignore[list-item]
        for span in self.spans:
            span.execute(out)
        if self.passthrough:
            measure = self.machine._measure
            for index, (workload, config, duration) in self.passthrough:
                out[index] = measure(workload, config, duration)
        return out


class VectorPlane:
    """Vectorized batch evaluator bound to one machine."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.arch = machine.arch
        self._base = _Lane(
            machine.arch, machine.pipeline, machine._power, ""
        )
        self._lanes: dict[str | None, _Lane] = {None: self._base}
        # Compiled programs, weakly keyed by plan object: a resident
        # plan (service engine, bench steady state, DSE loop)
        # re-executes with zero recompilation; a dropped plan frees its
        # program with it.
        self._programs: WeakKeyDictionary = WeakKeyDictionary()

    def _lane(self, core_class: str | None) -> _Lane:
        """The lane of one cluster core class (base lane for ``None``)."""
        key = self.machine._class_key(core_class)
        lane = self._lanes.get(key)
        if lane is None:
            arch, pipeline, power, _ = self.machine._parts(key)
            lane = _Lane(arch, pipeline, power, f".{key}")
            self._lanes[key] = lane
        return lane

    def cache_stats(self) -> dict:
        """Hit/miss/size counters of the plane's memo caches.

        The base lane reports under the historical ``packed``/``stacks``
        keys; additional cluster-class lanes report under
        ``packed:<class>`` / ``stacks:<class>``.
        """
        stats = {
            "packed": self._base.packed.stats(),
            "stacks": self._base.stacks.stats(),
        }
        for key, lane in self._lanes.items():
            if key is None:
                continue
            stats[f"packed:{key}"] = lane.packed.stats()
            stats[f"stacks:{key}"] = lane.stacks.stats()
        return stats

    # -- batch evaluation --------------------------------------------------------

    def cached_program(self, plan) -> _FusedProgram | None:
        """The compiled program of a previously measured plan, if any."""
        return self._programs.get(plan)

    def try_measure_cells(
        self,
        cells: Sequence[tuple[object, MachineConfig, float]],
        plan=None,
    ) -> list[Measurement] | None:
        """Measure ``(workload, config, duration)`` cells, or decline.

        Kernel cells -- across *all* configurations, heterogeneous
        topologies and windows in the batch -- compile into a fused
        tensor program and execute in one pass; placements and protocol
        workloads fall back to the scalar walk cell by cell (order
        preserved).  Batches with too few kernel cells to amortize the
        tensor setup are declined entirely: the caller runs the scalar
        walk, which is bit-identical anyway.  With ``plan`` given (the
        immutable :class:`~repro.exec.plan.ExperimentPlan` these cells
        came from, in plan-cell order), the compiled program is cached
        weakly under the plan, so re-executions skip compilation.
        """
        kernel_indices: list[int] = []
        topo_indices: list[int] = []
        for index, (workload, config, _) in enumerate(cells):
            if isinstance(workload, Kernel):
                if isinstance(config, ChipTopology):
                    topo_indices.append(index)
                else:
                    kernel_indices.append(index)
        # The threshold applies per homogeneity span: each span pays
        # its own tensor setup, so a minority span below the crossover
        # rides the scalar walk even when the other span vectorizes.
        kernel_span = (
            kernel_indices
            if len(kernel_indices) >= MIN_VECTOR_BATCH
            else None
        )
        topo_span = (
            topo_indices if len(topo_indices) >= MIN_VECTOR_BATCH else None
        )
        if kernel_span is None and topo_span is None:
            return None
        program = _FusedProgram(self, cells, kernel_span, topo_span)
        if plan is not None:
            self._programs[plan] = program
        return program.execute()
