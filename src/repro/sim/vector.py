"""Array-backed evaluation plane: whole measurement plans as tensors.

The scalar walk (:meth:`repro.sim.machine.Machine._measure`) evaluates
one (kernel, configuration, window) cell at a time through per-mnemonic
dict arithmetic.  This module compiles the same analytic state into
dense NumPy arrays and evaluates an entire plan's worth of cells --
spanning *different* configurations, heterogeneous
:class:`~repro.sim.topology.ChipTopology` chips and windows -- in one
vectorized pass:

* a **packed** form of :class:`~repro.sim.summary.KernelSummary` --
  fixed unit/level/counter index spaces derived from the architecture,
  with each kernel's occupancy/operation/level-count vectors stored as
  small dense arrays (:class:`PackedKernel`, LRU-memoized by kernel
  digest);
* packed kernels stacked into ``(kernels x units)`` / ``(kernels x
  levels)`` matrices (memoized per distinct batch composition, so a
  configuration sweep re-measuring one kernel set stacks it once), and
  gathered per cell by row index;
* the steady-state bounds, activity rates, performance-counter
  synthesis and hidden-power evaluation expressed as elementwise tensor
  ops over those matrices, with per-configuration scalars (SMT share,
  frequency scale, thread count, static power) repeated across each
  configuration's cell span;
* one :class:`_Lane` of index spaces *per core class*: heterogeneous
  topology cells evaluate cluster by cluster through each cluster core
  class's own lane (its own widths, unit mix, cache latencies, clock
  and energy scale), with per-cluster dynamic power combined over the
  shared uncore exactly as :func:`~repro.sim.power.topology_power`
  accumulates it;
* the batched sensor plane
  (:meth:`~repro.sim.sensors.PowerSensor.measure_batch`), which
  reproduces the per-cell ``stable_seed`` noise draws exactly --
  including a vectorized replay of CPython's MT19937 seeding for wide
  batches.

**Bit-identity contract.**  Every floating-point operation of the
scalar walk is replayed here with the same operand values in the same
order (IEEE-754 double arithmetic is deterministic, and NumPy
elementwise ops round exactly like Python floats), and reductions whose
accumulation order matters (the per-mnemonic energy sums, the
per-thread dynamic-power sum, the per-cluster dynamic accumulation)
are evaluated as explicit sequential column adds rather than
``np.sum`` (whose pairwise blocking would re-associate them).  The
vectorized path therefore produces *bit-identical* Measurements --
counters, powers and sensor noise draws -- to the scalar reference,
which stays in place as the executable specification and property-test
oracle (``tests/sim/test_vector_plane.py``,
``tests/sim/test_heterogeneous_machine.py``).
"""

from __future__ import annotations

from collections.abc import Sequence
from zlib import crc32

import numpy as np

from repro.caching import LRUCache
from repro.measure.measurement import Measurement
from repro.sim.config import MachineConfig
from repro.sim.kernel import Kernel
from repro.sim.pipeline import MSHRS_PER_THREAD, SMT_OVERHEAD
from repro.sim.power import (
    CMP_CONCAVE,
    CMP_EXPONENT,
    CMP_LINEAR,
    IDLE_POWER,
    LEVEL_ENERGY_NJ,
    SMT_LOGIC,
    UNCORE_ACTIVE,
    cmp_effect,
    data_multiplier,
    order_multiplier,
)
from repro.sim.topology import ChipTopology

#: Packed kernels retained per lane (LRU past this).
PACKED_CACHE_LIMIT = 65_536
#: Stacked batch matrices retained per lane (LRU past this); a
#: configuration sweep re-uses one stack across its whole ladder.
STACK_CACHE_LIMIT = 256
#: Below this many kernel cells the scalar walk is faster than the
#: tensor pass's fixed setup cost.  Both paths are bit-identical, so
#: this is purely a latency knob.
MIN_VECTOR_BATCH = 8


class PackedKernel:
    """One kernel's summary, packed into dense index-space arrays."""

    __slots__ = (
        "digest",
        "size",
        "unit_bound",
        "dependency_bound",
        "miss_latency",
        "alternation",
        "entropy",
        "active",
        "insn_e9",
        "insn_counts",
        "unit_ops",
        "counter_levels",
        "level_e9",
        "level_counts",
    )

    def __init__(self, summary, unit_names, counter_level_names, power_model):
        self.digest = summary.digest
        self.size = summary.size
        self.unit_bound = summary.unit_bound
        self.dependency_bound = summary.dependency_bound
        self.miss_latency = summary.miss_latency
        self.alternation = summary.alternation
        self.entropy = summary.entropy
        # Kernels always commit work (empty loop bodies are rejected at
        # construction); the flag guards the idle-power degenerate case
        # exactly as the scalar walk's activity check does.
        self.active = bool(summary.mnemonic_counts)
        # Per-mnemonic energies and counts, in the summary's dict
        # insertion order: the scalar energy sum iterates that order,
        # and sequential column adds must replay it term for term.
        items = list(summary.mnemonic_counts.items())
        self.insn_e9 = np.array(
            [power_model.instruction_energy(m) * 1e-9 for m, _ in items]
        )
        self.insn_counts = np.array([float(c) for _, c in items])
        self.unit_ops = np.array(
            [summary.unit_ops.get(name, 0.0) for name in unit_names]
        )
        self.counter_levels = np.array(
            [summary.level_counts.get(name, 0.0) for name in counter_level_names]
        )
        energy_levels = [
            (LEVEL_ENERGY_NJ[level] * 1e-9, float(count))
            for level, count in summary.level_counts.items()
            if level in LEVEL_ENERGY_NJ
        ]
        self.level_e9 = np.array([e for e, _ in energy_levels])
        self.level_counts = np.array([c for _, c in energy_levels])


class _KernelStack:
    """Matrices of one distinct kernel-set, shared across configurations."""

    __slots__ = (
        "size",
        "unit_bound",
        "dependency_bound",
        "miss_latency",
        "order_mult",
        "data_mult",
        "all_active",
        "active",
        "insn_e9",
        "insn_counts",
        "unit_ops",
        "counter_levels",
        "level_e9",
        "level_counts",
    )

    def __init__(self, packs: Sequence[PackedKernel]) -> None:
        count = len(packs)
        self.size = np.array([float(pack.size) for pack in packs])
        self.unit_bound = np.array([pack.unit_bound for pack in packs])
        self.dependency_bound = np.array(
            [pack.dependency_bound for pack in packs]
        )
        self.miss_latency = np.array([pack.miss_latency for pack in packs])
        # The order/data multipliers only depend on the kernel, so they
        # stack once per batch composition; computed with the exact
        # scalar helpers so each element carries the scalar's bits.
        self.order_mult = np.array(
            [order_multiplier(pack.alternation) for pack in packs]
        )
        self.data_mult = np.array(
            [data_multiplier(pack.entropy) for pack in packs]
        )
        self.active = np.array([pack.active for pack in packs])
        self.all_active = all(pack.active for pack in packs)
        # Ragged per-mnemonic/per-level vectors pad with trailing
        # zeros: a zero term adds exactly nothing to a non-negative
        # sequential sum, so padding never perturbs the accumulation.
        mnemonics = max((len(pack.insn_e9) for pack in packs), default=0)
        levels = max((len(pack.level_e9) for pack in packs), default=0)
        self.insn_e9 = np.zeros((count, mnemonics))
        self.insn_counts = np.zeros((count, mnemonics))
        self.level_e9 = np.zeros((count, levels))
        self.level_counts = np.zeros((count, levels))
        for row, pack in enumerate(packs):
            width = len(pack.insn_e9)
            self.insn_e9[row, :width] = pack.insn_e9
            self.insn_counts[row, :width] = pack.insn_counts
            depth = len(pack.level_e9)
            self.level_e9[row, :depth] = pack.level_e9
            self.level_counts[row, :depth] = pack.level_counts
        self.unit_ops = np.vstack([pack.unit_ops for pack in packs])
        self.counter_levels = np.vstack(
            [pack.counter_levels for pack in packs]
        )


def _sequential_row_sum(terms: np.ndarray) -> np.ndarray:
    """Left-to-right row sums, replaying Python's ``sum()`` exactly.

    ``np.sum`` uses pairwise blocking, which re-associates the
    floating-point adds; the scalar reference accumulates strictly left
    to right starting from zero, so the vector plane must too.
    """
    total = np.zeros(terms.shape[0])
    for column in range(terms.shape[1]):
        total = total + terms[:, column]
    return total


class _Lane:
    """One core class's index spaces, packs and stacks.

    The homogeneous machine is the single base lane; each additional
    cluster core class of a heterogeneous topology gets its own lane,
    so kernels pack against the right unit mix, cache latencies,
    dispatch width, clock and hidden energy model.
    """

    __slots__ = (
        "arch",
        "pipeline",
        "power",
        "width",
        "frequency",
        "energy_scale",
        "unit_names",
        "counter_names",
        "counter_level_names",
        "packed",
        "stacks",
    )

    def __init__(self, arch, pipeline, power_model, tag: str) -> None:
        self.arch = arch
        self.pipeline = pipeline
        self.power = power_model
        self.width = arch.chip.dispatch_width
        self.frequency = arch.chip.cycles_per_second
        self.energy_scale = arch.chip.energy_scale
        self.unit_names = tuple(arch.units)
        # Fixed counter layout: exactly the key order
        # ``counters_from_activity`` emits.
        names = ["PM_RUN_CYC", "PM_RUN_INST_CMPL"]
        names.extend(unit.counter for unit in arch.units.values())
        names.extend(["PM_LD_REF_L1", "PM_ST_REF_L1"])
        names.extend(cache.counter for cache in arch.caches[1:])
        names.append(arch.memory.counter)
        self.counter_names = tuple(names)
        # The hierarchy levels backing the level-derived counters, in
        # the same column order as the counter tail above.
        self.counter_level_names = (
            "_loads",
            "_stores",
            *(cache.name for cache in arch.caches[1:]),
            arch.memory.name,
        )
        self.packed: LRUCache[int, PackedKernel] = LRUCache(
            PACKED_CACHE_LIMIT, f"vector.packed{tag}"
        )
        self.stacks: LRUCache[tuple, _KernelStack] = LRUCache(
            STACK_CACHE_LIMIT, f"vector.stacks{tag}"
        )

    def pack(self, kernel: Kernel) -> PackedKernel:
        digest = kernel.digest()
        pack = self.packed.get(digest)
        if pack is None:
            pack = PackedKernel(
                self.pipeline.summarize(kernel),
                self.unit_names,
                self.counter_level_names,
                self.power,
            )
            self.packed.put(digest, pack)
        return pack

    def stack(self, kernels: Sequence[Kernel]) -> _KernelStack:
        packs = [self.pack(kernel) for kernel in kernels]
        key = tuple(pack.digest for pack in packs)
        stack = self.stacks.get(key)
        if stack is None:
            stack = _KernelStack(packs)
            self.stacks.put(key, stack)
        return stack


class _Group:
    """One (configuration, window) span of a cell batch."""

    __slots__ = ("config", "duration", "cells", "seed_mid")

    def __init__(self, config, duration: float) -> None:
        self.config = config
        self.duration = duration
        self.cells: list[int] = []  # positions in the kernel-cell order


class VectorPlane:
    """Vectorized batch evaluator bound to one machine."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.arch = machine.arch
        self._base = _Lane(
            machine.arch, machine.pipeline, machine._power, ""
        )
        self._lanes: dict[str | None, _Lane] = {None: self._base}

    def _lane(self, core_class: str | None) -> _Lane:
        """The lane of one cluster core class (base lane for ``None``)."""
        key = self.machine._class_key(core_class)
        lane = self._lanes.get(key)
        if lane is None:
            arch, pipeline, power, _ = self.machine._parts(key)
            lane = _Lane(arch, pipeline, power, f".{key}")
            self._lanes[key] = lane
        return lane

    def cache_stats(self) -> dict:
        """Hit/miss/size counters of the plane's memo caches.

        The base lane reports under the historical ``packed``/``stacks``
        keys; additional cluster-class lanes report under
        ``packed:<class>`` / ``stacks:<class>``.
        """
        stats = {
            "packed": self._base.packed.stats(),
            "stacks": self._base.stacks.stats(),
        }
        for key, lane in self._lanes.items():
            if key is None:
                continue
            stats[f"packed:{key}"] = lane.packed.stats()
            stats[f"stacks:{key}"] = lane.stacks.stats()
        return stats

    # -- batch evaluation --------------------------------------------------------

    def try_measure_cells(
        self, cells: Sequence[tuple[object, MachineConfig, float]]
    ) -> list[Measurement] | None:
        """Measure ``(workload, config, duration)`` cells, or decline.

        Kernel cells -- across *all* configurations, heterogeneous
        topologies and windows in the batch -- evaluate as tensor
        passes; placements and protocol workloads fall back to the
        scalar walk cell by cell (order preserved).  Batches with too
        few kernel cells to amortize the tensor setup are declined
        entirely: the caller runs the scalar walk, which is
        bit-identical anyway.
        """
        kernel_indices: list[int] = []
        topo_indices: list[int] = []
        for index, (workload, config, _) in enumerate(cells):
            if isinstance(workload, Kernel):
                if isinstance(config, ChipTopology):
                    topo_indices.append(index)
                else:
                    kernel_indices.append(index)
        # The threshold applies per homogeneity span: each span pays
        # its own tensor setup, so a minority span below the crossover
        # rides the scalar walk even when the other span vectorizes.
        spans = [
            (span, topology)
            for span, topology in (
                (kernel_indices, False),
                (topo_indices, True),
            )
            if len(span) >= MIN_VECTOR_BATCH
        ]
        if not spans:
            return None

        results: list[Measurement | None] = [None] * len(cells)
        for span, topology in spans:
            for index, measurement in zip(
                span, self._measure_span(cells, span, topology)
            ):
                results[index] = measurement
        for index, (workload, config, duration) in enumerate(cells):
            if results[index] is None:
                results[index] = self.machine._measure(
                    workload, config, duration
                )
        return results  # type: ignore[return-value]

    def _measure_span(
        self, cells, span: Sequence[int], topology: bool
    ) -> list[Measurement]:
        """Group one homogeneity class of kernel cells and evaluate it."""
        # Group kernel cells by (config object, window).  Grouping is
        # purely an evaluation-shape choice -- every cell's result is
        # an independent pure function of its own content -- so
        # object-identity grouping (plans reuse config objects, and
        # hashing a MachineConfig per cell is costly) is always sound;
        # equal configs arriving as distinct objects just form
        # separate, identically-evaluated spans.
        groups: dict[tuple, _Group] = {}
        # Unique kernels by measurement identity: the noise seed folds
        # in the workload *name* and content digest, so two
        # equal-content kernels under different names stay distinct.
        unique_of: dict[tuple, int] = {}
        kernels: list[Kernel] = []
        cell_rows: list[int] = []  # kernel-cell -> unique kernel row
        for index in span:
            workload, config, duration = cells[index]
            group_key = (id(config), duration)
            group = groups.get(group_key)
            if group is None:
                group = groups[group_key] = _Group(config, duration)
            key = (workload.name, workload.digest())
            row = unique_of.get(key)
            if row is None:
                row = len(kernels)
                unique_of[key] = row
                kernels.append(workload)
            group.cells.append(len(cell_rows))
            cell_rows.append(row)
        evaluate = self._evaluate_topology if topology else self._evaluate
        return evaluate(kernels, cell_rows, list(groups.values()))

    def _evaluate(
        self,
        kernels: Sequence[Kernel],
        cell_rows: Sequence[int],
        groups: Sequence[_Group],
    ) -> list[Measurement]:
        """One Measurement per kernel cell, in kernel-cell order."""
        lane = self._base
        packs = [lane.pack(kernel) for kernel in kernels]
        stack = lane.stack(kernels)

        cell_count = len(cell_rows)
        rows = np.asarray(cell_rows, dtype=np.intp)

        # Per-configuration scalars, computed once per group in plain
        # Python (bit-for-bit the scalar walk's arithmetic) and
        # repeated across the group's cell span.
        machine_seed = self.machine.seed
        group_sizes = []
        share_g, fs_g, freq_eff_g, duration_g = [], [], [], []
        threads_g, dyn_scale_g, nominal_g, static_g = [], [], [], []
        scatter: list[int] = []  # tensor position -> kernel-cell index
        for group in groups:
            config = group.config
            p_state = config.p_state
            group_sizes.append(len(group.cells))
            scatter.extend(group.cells)
            share_g.append(config.smt / (1.0 - SMT_OVERHEAD[config.smt]))
            fs_g.append(p_state.freq_scale)
            freq_eff_g.append(self.machine.frequency * p_state.freq_scale)
            duration_g.append(group.duration)
            threads_g.append(config.threads)
            nominal_g.append(p_state.is_nominal)
            dyn_scale_g.append(
                1.0 if p_state.is_nominal else p_state.dynamic_scale
            )
            static = IDLE_POWER
            static += UNCORE_ACTIVE
            static += cmp_effect(config.cores)
            if config.smt_enabled:
                static += SMT_LOGIC * config.cores
            static_g.append(static)
            group.seed_mid = (
                f"|{config.label}|{group.duration}|{machine_seed}|"
            )

        order = np.asarray(scatter, dtype=np.intp)
        krows = rows[order]  # tensor position -> unique kernel row
        repeats = np.asarray(group_sizes)
        share = np.repeat(np.asarray(share_g), repeats)
        fs = np.repeat(np.asarray(fs_g), repeats)
        freq_eff = np.repeat(np.asarray(freq_eff_g), repeats)
        window = np.repeat(np.asarray(duration_g), repeats)
        threads = np.repeat(np.asarray(threads_g), repeats)
        dyn_scale = np.repeat(np.asarray(dyn_scale_g), repeats)
        static = np.repeat(np.asarray(static_g), repeats)

        # Steady-state bounds and period (same operand order as
        # bounds_from_summary), gathered per cell.
        size = stack.size[krows]
        dispatch = (size / lane.width) * share
        unit = stack.unit_bound[krows] * share
        memory = (stack.miss_latency[krows] / MSHRS_PER_THREAD) * share
        period = np.maximum(
            np.maximum(dispatch, unit),
            np.maximum(stack.dependency_bound[krows], memory),
        )
        iterations = lane.frequency / period
        ipc = size / period

        # Performance counters: a (cells x counters) matrix in the
        # scalar synthesizer's exact column order and operand order
        # (rate = (per-iteration count * iterations) * freq_scale, then
        # * duration).
        rate_scale = iterations[:, None]
        fs_col = fs[:, None]
        window_col = window[:, None]
        unit_block = (
            (stack.unit_ops[krows] * rate_scale) * fs_col
        ) * window_col
        level_block = (
            (stack.counter_levels[krows] * rate_scale) * fs_col
        ) * window_col
        counters = np.empty((cell_count, len(lane.counter_names)))
        counters[:, 0] = freq_eff * window
        counters[:, 1] = (ipc * freq_eff) * window
        units = len(lane.unit_names)
        counters[:, 2 : 2 + units] = unit_block
        counters[:, 2 + units :] = level_block

        # Hidden power: per-thread dynamic watts, then the chip sum.
        insn_terms = stack.insn_e9[krows] * (
            (stack.insn_counts[krows] * rate_scale) * fs_col
        )
        core_joules = _sequential_row_sum(insn_terms)
        level_terms = stack.level_e9[krows] * (
            (stack.level_counts[krows] * rate_scale) * fs_col
        )
        level_joules = _sequential_row_sum(level_terms)
        order_mult = stack.order_mult[krows]
        data_mult = stack.data_mult[krows]
        thread_dynamic = (
            order_mult * data_mult
        ) * core_joules + data_mult * level_joules
        # A machine whose *base* class declares a dynamic-energy scale
        # (running the eco definition directly, as per-cluster
        # campaigns do) scales here exactly like the scalar walk's
        # thread_dynamic_power.
        if lane.energy_scale != 1.0:
            thread_dynamic = thread_dynamic * lane.energy_scale
        # The scalar walk sums the identical per-thread power once per
        # hardware thread; replay that accumulation exactly rather than
        # multiplying by the thread count (which rounds differently).
        # Cells whose thread count is already exhausted accumulate
        # +0.0, which leaves their partial sum bit-identical.
        dynamic = np.zeros(cell_count)
        for step in range(int(threads.max())):
            dynamic = dynamic + np.where(
                step < threads, thread_dynamic, 0.0
            )
        dynamic = dynamic * dyn_scale
        power = static + dynamic
        active = stack.active[krows]
        if not stack.all_active:
            power = np.where(active, power, IDLE_POWER)

        # Sensor plane: per-cell stable_seed draws, exactly as the
        # scalar walk salts them (workload name, configuration label,
        # window, machine seed, kernel digest).
        digests = [pack.digest for pack in packs]
        names = [kernel.name for kernel in kernels]
        seeds = []
        position = 0
        krows_list = krows.tolist()
        for group, count in zip(groups, group_sizes):
            mid = group.seed_mid
            for row in krows_list[position : position + count]:
                seeds.append(
                    crc32(f"{names[row]}{mid}{digests[row]}".encode())
                )
            position += count
        means, stats = self._sense(
            groups, group_sizes, power.tolist(), seeds
        )

        # Assemble Measurements through the validation-free fast
        # constructor (the plane guarantees the invariants by
        # construction).
        counter_rows = counters.tolist()
        counter_names = lane.counter_names
        measurements: list[Measurement] = [None] * cell_count  # type: ignore[list-item]
        position = 0
        for group, count in zip(groups, group_sizes):
            config = group.config
            duration = group.duration
            thread_count = config.threads
            for offset in range(count):
                cell = position + offset
                readings = dict(
                    zip(counter_names, counter_rows[cell])
                )
                power_std, samples = stats[cell]
                measurements[cell] = Measurement.unchecked(
                    workload_name=names[krows_list[cell]],
                    config=config,
                    duration=duration,
                    thread_counters=(readings,) * thread_count,
                    mean_power=means[cell],
                    power_std=power_std,
                    sample_count=samples,
                )
            position += count

        return self._scatter_back(measurements, scatter)

    def _evaluate_topology(
        self,
        kernels: Sequence[Kernel],
        cell_rows: Sequence[int],
        groups: Sequence[_Group],
    ) -> list[Measurement]:
        """Heterogeneous topology cells as per-cluster tensor passes.

        Each (topology, window) group evaluates cluster by cluster
        through the cluster core class's lane, replaying the scalar
        topology walk exactly: static chip power accumulated in plain
        Python floats, each cluster's per-thread dynamic power summed
        by sequential adds and ``V^2``-scaled by its own operating
        point, counters synthesized at each cluster's effective clock.
        """
        machine_seed = self.machine.seed
        cell_count = len(cell_rows)
        rows = np.asarray(cell_rows, dtype=np.intp)
        names = [kernel.name for kernel in kernels]
        digests = [kernel.digest() for kernel in kernels]

        scatter: list[int] = []
        group_sizes: list[int] = []
        powers: list[float] = []
        seeds: list[int] = []
        # Per tensor position: list of (readings dict, thread count)
        # per cluster, topology order.
        cluster_readings: list[list[tuple[dict, int]]] = []

        for group in groups:
            topology: ChipTopology = group.config
            duration = group.duration
            count = len(group.cells)
            group_sizes.append(count)
            scatter.extend(group.cells)
            krows = rows[np.asarray(group.cells, dtype=np.intp)]

            # Static chip power: plain-float accumulation in the exact
            # order of power.topology_power (concave CMP part over the
            # total core count, the linear per-core part per cluster
            # scaled by its class's energy scale).
            static = IDLE_POWER
            static += UNCORE_ACTIVE
            static += CMP_CONCAVE * topology.cores ** CMP_EXPONENT
            for cluster in topology.clusters:
                lane = self._lane(cluster.core_class)
                static += CMP_LINEAR * cluster.cores * lane.energy_scale
                if cluster.smt_enabled:
                    static += SMT_LOGIC * cluster.cores

            power = np.full(count, static)
            active = None
            per_cluster: list[tuple[np.ndarray, tuple, int]] = []
            for cluster in topology.clusters:
                lane = self._lane(cluster.core_class)
                stack = lane.stack(kernels)
                if active is None:
                    active = stack.active[krows]
                    all_active = stack.all_active
                p_state = cluster.p_state
                share = cluster.smt / (1.0 - SMT_OVERHEAD[cluster.smt])
                fs = p_state.freq_scale
                freq_eff = lane.frequency * fs

                size = stack.size[krows]
                dispatch = (size / lane.width) * share
                unit = stack.unit_bound[krows] * share
                memory = (
                    stack.miss_latency[krows] / MSHRS_PER_THREAD
                ) * share
                period = np.maximum(
                    np.maximum(dispatch, unit),
                    np.maximum(stack.dependency_bound[krows], memory),
                )
                iterations = lane.frequency / period
                ipc = size / period
                rate_scale = iterations[:, None]

                # The cluster's counter block at its effective clock.
                unit_block = (
                    (stack.unit_ops[krows] * rate_scale) * fs
                ) * duration
                level_block = (
                    (stack.counter_levels[krows] * rate_scale) * fs
                ) * duration
                counters = np.empty((count, len(lane.counter_names)))
                counters[:, 0] = freq_eff * duration
                counters[:, 1] = (ipc * freq_eff) * duration
                units = len(lane.unit_names)
                counters[:, 2 : 2 + units] = unit_block
                counters[:, 2 + units :] = level_block
                per_cluster.append(
                    (counters, lane.counter_names, cluster.threads)
                )

                # The cluster's dynamic power.
                insn_terms = stack.insn_e9[krows] * (
                    (stack.insn_counts[krows] * rate_scale) * fs
                )
                core_joules = _sequential_row_sum(insn_terms)
                level_terms = stack.level_e9[krows] * (
                    (stack.level_counts[krows] * rate_scale) * fs
                )
                level_joules = _sequential_row_sum(level_terms)
                thread_dynamic = (
                    stack.order_mult[krows] * stack.data_mult[krows]
                ) * core_joules + stack.data_mult[krows] * level_joules
                if lane.energy_scale != 1.0:
                    thread_dynamic = thread_dynamic * lane.energy_scale
                dynamic = np.zeros(count)
                for _ in range(cluster.threads):
                    dynamic = dynamic + thread_dynamic
                if not p_state.is_nominal:
                    dynamic = dynamic * p_state.dynamic_scale
                power = power + dynamic

            if not all_active:
                power = np.where(active, power, IDLE_POWER)
            powers.extend(power.tolist())

            mid = f"|{topology.label}|{duration}|{machine_seed}|"
            krows_list = krows.tolist()
            for row in krows_list:
                seeds.append(
                    crc32(f"{names[row]}{mid}{digests[row]}".encode())
                )
            # Per-cell cluster readings, assembled after the numeric
            # passes so each cluster's matrix converts to lists once.
            cluster_rows = [
                (counters.tolist(), counter_names, thread_count)
                for counters, counter_names, thread_count in per_cluster
            ]
            for offset in range(count):
                cluster_readings.append(
                    [
                        (
                            dict(zip(counter_names, counter_rows[offset])),
                            thread_count,
                        )
                        for counter_rows, counter_names, thread_count
                        in cluster_rows
                    ]
                )

        means, stats = self._sense(groups, group_sizes, powers, seeds)

        measurements: list[Measurement] = [None] * cell_count  # type: ignore[list-item]
        position = 0
        krows_all = rows[np.asarray(scatter, dtype=np.intp)].tolist()
        for group, count in zip(groups, group_sizes):
            for offset in range(count):
                cell = position + offset
                thread_counters = tuple(
                    readings
                    for readings, thread_count in cluster_readings[cell]
                    for _ in range(thread_count)
                )
                power_std, samples = stats[cell]
                measurements[cell] = Measurement.unchecked(
                    workload_name=names[krows_all[cell]],
                    config=group.config,
                    duration=group.duration,
                    thread_counters=thread_counters,
                    mean_power=means[cell],
                    power_std=power_std,
                    sample_count=samples,
                )
            position += count

        return self._scatter_back(measurements, scatter)

    # -- shared plumbing ---------------------------------------------------------

    def _sense(
        self,
        groups: Sequence[_Group],
        group_sizes: Sequence[int],
        power_list: Sequence[float],
        seeds: Sequence[int],
    ) -> tuple[list[float], list[tuple[float, int]]]:
        """Batched sensor draws, grouped per distinct window length.

        Windows can differ across groups; the sensor batches per
        distinct duration (draws are per-cell-seeded, so regrouping
        cannot change them).
        """
        cell_count = len(power_list)
        means: list[float] = [0.0] * cell_count
        stats: list[tuple[float, int]] = [None] * cell_count  # type: ignore[list-item]
        position = 0
        by_duration: dict[float, tuple[list[int], list[float], list[int]]] = {}
        for group, count in zip(groups, group_sizes):
            span = range(position, position + count)
            bucket = by_duration.setdefault(group.duration, ([], [], []))
            bucket[0].extend(span)
            bucket[1].extend(power_list[position : position + count])
            bucket[2].extend(seeds[position : position + count])
            position += count
        sensor = self.machine._sensor
        for duration, (positions, cell_powers, cell_seeds) in by_duration.items():
            batch_means, power_std, samples = sensor.measure_batch(
                cell_powers, duration, cell_seeds
            )
            for cell, mean in zip(positions, batch_means):
                means[cell] = mean
                stats[cell] = (power_std, samples)
        return means, stats

    @staticmethod
    def _scatter_back(
        measurements: Sequence[Measurement], scatter: Sequence[int]
    ) -> list[Measurement]:
        """Tensor (group-major) order back to the caller's cell order."""
        ordered: list[Measurement] = [None] * len(measurements)  # type: ignore[list-item]
        for tensor_position, cell_index in enumerate(scatter):
            ordered[cell_index] = measurements[tensor_position]
        return ordered
