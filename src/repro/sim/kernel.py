"""Kernel: the simulator-facing view of a generated micro-benchmark.

The code-generation module (:mod:`repro.core`) produces a rich IR and
emits C/assembly artifacts; the machine only needs the dynamic essence
of the endless loop: the instruction sequence, each instruction's
dependency link, the planned memory source level per slot, and the
operand-data entropy set by the value-initialisation passes.

Every generated kernel is a short sequence replicated to fill the loop,
so a kernel may additionally carry a *period fingerprint*: ``period=p``
declares that slot ``i`` is analytically equivalent to slot ``i % p``
(same mnemonic, dependency distance and source level -- planned byte
addresses may differ) for every slot below the last full period; any
trailing remainder (typically the loop-closing branch) is arbitrary.
The steady-state evaluation engine exploits the fingerprint to
summarize a kernel in O(period) instead of O(loop size) work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hashing import content_hash


@dataclass(frozen=True)
class KernelInstruction:
    """One slot of the loop body.

    Attributes:
        mnemonic: ISA mnemonic.
        dep_distance: Distance (in slots) to the producer this slot's
            inputs depend on, or ``None`` when the slot is independent.
        source_level: For memory operations, the hierarchy level the
            analytical cache model planned this access to hit
            (``L1``/``L2``/``L3``/``MEM``); ``None`` otherwise.
        address: Planned byte address for memory operations.
    """

    mnemonic: str
    dep_distance: int | None = None
    source_level: str | None = None
    address: int | None = None

    def analytic_key(self) -> tuple:
        """The fields steady-state analytics depend on (no address).

        Cached on the instance: builders intern slot objects, so the
        periodicity checks over large generated bodies reduce to dict
        lookups.  (Benign if raced -- the tuple is deterministic.)
        """
        key = self.__dict__.get("_akey")
        if key is None:
            key = (self.mnemonic, self.dep_distance, self.source_level)
            object.__setattr__(self, "_akey", key)
        return key

    def to_list(self) -> list:
        """Compact JSON-able form, round-tripped by :meth:`from_list`."""
        return [self.mnemonic, self.dep_distance, self.source_level, self.address]

    @classmethod
    def from_list(cls, data: list) -> "KernelInstruction":
        """Rebuild a slot serialized by :meth:`to_list`."""
        mnemonic, dep_distance, source_level, address = data
        return cls(
            mnemonic=mnemonic,
            dep_distance=dep_distance,
            source_level=source_level,
            address=address,
        )


@dataclass(frozen=True)
class Kernel:
    """An endless-loop micro-benchmark ready to run on the machine.

    Attributes:
        name: Identifier used in measurements and seeding.
        instructions: The loop body, in program order.
        operand_entropy: Data-switching activity of the operand values,
            from 0.0 (all zeros) to 1.0 (random data).
        period: Declared analytic period of the loop body, or ``None``
            when the body has no known periodic structure.  Producers
            (stressmark builder, bootstrap, synthesizer) set this; the
            engine *trusts* it -- slots covered by the replicated
            pattern are neither validated nor re-read, so a wrong
            declaration yields wrong steady-state results.  See
            :meth:`validate_period` for the contract check (O(loop
            size); the producer tests run it on every builder).
        analytic_period: Optional declared *minimal* analytic period of
            the pattern: a divisor ``q`` of ``period`` such that slot
            ``i`` of the pattern is analytically equivalent to slot
            ``i % q``.  Builders whose pattern is a short sequence
            replicated over an address round-robin (the declared period
            is the lcm, the analytic period the bare sequence length)
            set this so the evaluation engine can skip its periodicity
            search.  Trusted exactly like ``period``; never enters the
            digest, so it is free to add to existing kernels.
    """

    name: str
    instructions: tuple[KernelInstruction, ...]
    operand_entropy: float = 1.0
    period: int | None = None
    analytic_period: int | None = None

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError(f"kernel {self.name!r} has an empty loop body")
        if not 0.0 <= self.operand_entropy <= 1.0:
            raise ValueError("operand_entropy must be within [0, 1]")
        if self.period is not None and self.period < 1:
            raise ValueError(f"kernel {self.name!r}: period must be >= 1")
        # With a declared period, the fingerprint contract makes one
        # period plus the tail representative -- validate O(period).
        pattern, repeats, tail = self.periodic_parts()
        if self.analytic_period is not None and (
            self.analytic_period < 1 or len(pattern) % self.analytic_period
        ):
            raise ValueError(
                f"kernel {self.name!r}: analytic_period "
                f"{self.analytic_period} must divide the pattern "
                f"length {len(pattern)}"
            )
        for base, slots in ((0, pattern), (repeats * len(pattern), tail)):
            for index, instruction in enumerate(slots):
                distance = instruction.dep_distance
                if distance is not None and distance < 1:
                    raise ValueError(
                        f"kernel {self.name!r} slot {base + index}: "
                        f"dependency distance must be >= 1, got {distance}"
                    )

    def __len__(self) -> int:
        return len(self.instructions)

    # -- periodic structure ----------------------------------------------------

    def periodic_parts(
        self,
    ) -> tuple[tuple[KernelInstruction, ...], int, tuple[KernelInstruction, ...]]:
        """``(pattern, repeats, tail)`` decomposition of the loop body.

        For a kernel with a declared period ``p``, the body is
        ``pattern * repeats + tail`` where ``pattern`` is the first
        period and ``tail`` the trailing remainder (analytically exact
        by the period contract).  Aperiodic kernels decompose trivially
        as one repeat of the whole body.
        """
        period = self.period
        if period is None or period >= len(self.instructions):
            return self.instructions, 1, ()
        repeats = len(self.instructions) // period
        return (
            self.instructions[:period],
            repeats,
            self.instructions[repeats * period:],
        )

    def validate_period(self) -> None:
        """Assert the declared period contract (O(loop size); tests only).

        Raises:
            ValueError: If some slot below the last full period is not
                analytically equivalent to its image in the first one.
        """
        pattern, repeats, _ = self.periodic_parts()
        period = len(pattern)
        if self.period is not None:
            for index in range(period, repeats * period):
                expected = pattern[index % period].analytic_key()
                actual = self.instructions[index].analytic_key()
                if actual != expected:
                    raise ValueError(
                        f"kernel {self.name!r}: slot {index} {actual} "
                        f"breaks the declared period {period} "
                        f"({expected} expected)"
                    )
        if self.analytic_period is not None:
            reduced = self.analytic_period
            for index in range(reduced, period):
                expected = pattern[index % reduced].analytic_key()
                actual = pattern[index].analytic_key()
                if actual != expected:
                    raise ValueError(
                        f"kernel {self.name!r}: pattern slot {index} "
                        f"{actual} breaks the declared analytic period "
                        f"{reduced} ({expected} expected)"
                    )

    # -- content identity --------------------------------------------------------

    def digest(self) -> int:
        """Deterministic analytic-content digest (stable across processes).

        Keys the evaluation engine's summary/activity memoization and
        salts sensor seeds so two kernels that share a name can never
        produce identical noise draws.  For kernels with a declared
        period the digest covers one period plus the repeat count and
        tail, making it O(period) to compute.
        """
        cached = self.__dict__.get("_digest")
        if cached is not None:
            return cached
        pattern, repeats, tail = self.periodic_parts()
        text = (
            f"{self.operand_entropy}:{len(pattern)}:{repeats}:"
            f"{_content_text(pattern)}#{_content_text(tail)}"
        )
        value = content_hash(text)
        object.__setattr__(self, "_digest", value)
        return value

    def mnemonic_counts(self) -> dict[str, int]:
        """Occurrences of each mnemonic in the loop body."""
        counts: dict[str, int] = {}
        pattern, repeats, tail = self.periodic_parts()
        for instruction in pattern:
            counts[instruction.mnemonic] = (
                counts.get(instruction.mnemonic, 0) + repeats
            )
        for instruction in tail:
            counts[instruction.mnemonic] = counts.get(instruction.mnemonic, 0) + 1
        return counts

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able form, round-tripped by :meth:`from_dict`.

        Periodic kernels serialize one pattern plus the repeat count and
        tail (the same decomposition :meth:`digest` hashes), so a
        4096-instruction stressmark stores as its 6-slot pattern.
        """
        pattern, repeats, tail = self.periodic_parts()
        return {
            "name": self.name,
            "operand_entropy": self.operand_entropy,
            "period": self.period,
            "analytic_period": self.analytic_period,
            "pattern": [instruction.to_list() for instruction in pattern],
            "repeats": repeats,
            "tail": [instruction.to_list() for instruction in tail],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Kernel":
        """Rebuild a kernel serialized by :meth:`to_dict`.

        :meth:`digest` hashes exactly what :meth:`to_dict` stores (one
        pattern, the repeat count, the tail), so digests -- and with
        them cell keys, summary-cache entries and noise salts --
        round-trip identically.  The only thing that can differ is the
        raw bytes of replicated pattern slots whose planned addresses
        varied across repeats; those are analytically irrelevant (see
        :meth:`KernelInstruction.analytic_key`).  Aperiodic kernels
        round-trip byte-exactly.
        """
        pattern = tuple(
            KernelInstruction.from_list(item) for item in data["pattern"]
        )
        tail = tuple(KernelInstruction.from_list(item) for item in data["tail"])
        return cls(
            name=data["name"],
            instructions=pattern * data["repeats"] + tail,
            operand_entropy=data["operand_entropy"],
            period=data["period"],
            analytic_period=data.get("analytic_period"),
        )

    def memory_slots(self) -> list[int]:
        """Indices of slots carrying a planned memory access."""
        return [
            index for index, instruction in enumerate(self.instructions)
            if instruction.source_level is not None
        ]


def _content_text(instructions: tuple[KernelInstruction, ...]) -> str:
    # The rendered slot text is cached on the instruction objects:
    # builders intern slot instances, so a batch of generated kernels
    # renders each distinct slot once instead of once per digest, and
    # the warm path is a bare dict-lookup comprehension.
    try:
        return "|".join(
            [ins.__dict__["_content"] for ins in instructions]
        )
    except KeyError:
        pass
    parts = []
    for ins in instructions:
        text = ins.__dict__.get("_content")
        if text is None:
            text = (
                f"{ins.mnemonic},{ins.dep_distance},"
                f"{ins.source_level},{ins.address}"
            )
            object.__setattr__(ins, "_content", text)
        parts.append(text)
    return "|".join(parts)
