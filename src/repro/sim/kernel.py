"""Kernel: the simulator-facing view of a generated micro-benchmark.

The code-generation module (:mod:`repro.core`) produces a rich IR and
emits C/assembly artifacts; the machine only needs the dynamic essence
of the endless loop: the instruction sequence, each instruction's
dependency link, the planned memory source level per slot, and the
operand-data entropy set by the value-initialisation passes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelInstruction:
    """One slot of the loop body.

    Attributes:
        mnemonic: ISA mnemonic.
        dep_distance: Distance (in slots) to the producer this slot's
            inputs depend on, or ``None`` when the slot is independent.
        source_level: For memory operations, the hierarchy level the
            analytical cache model planned this access to hit
            (``L1``/``L2``/``L3``/``MEM``); ``None`` otherwise.
        address: Planned byte address for memory operations.
    """

    mnemonic: str
    dep_distance: int | None = None
    source_level: str | None = None
    address: int | None = None


@dataclass(frozen=True)
class Kernel:
    """An endless-loop micro-benchmark ready to run on the machine.

    Attributes:
        name: Identifier used in measurements and seeding.
        instructions: The loop body, in program order.
        operand_entropy: Data-switching activity of the operand values,
            from 0.0 (all zeros) to 1.0 (random data).
    """

    name: str
    instructions: tuple[KernelInstruction, ...]
    operand_entropy: float = 1.0

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError(f"kernel {self.name!r} has an empty loop body")
        if not 0.0 <= self.operand_entropy <= 1.0:
            raise ValueError("operand_entropy must be within [0, 1]")
        for index, instruction in enumerate(self.instructions):
            distance = instruction.dep_distance
            if distance is not None and distance < 1:
                raise ValueError(
                    f"kernel {self.name!r} slot {index}: dependency "
                    f"distance must be >= 1, got {distance}"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def digest(self) -> int:
        """Deterministic content digest (stable across processes).

        Used to salt sensor seeds so two kernels that share a name can
        never produce identical noise draws.
        """
        import zlib

        text = "|".join(
            f"{ins.mnemonic},{ins.dep_distance},{ins.source_level},"
            f"{ins.address}"
            for ins in self.instructions
        )
        return zlib.crc32(f"{self.operand_entropy}:{text}".encode())

    def mnemonic_counts(self) -> dict[str, int]:
        """Occurrences of each mnemonic in the loop body."""
        counts: dict[str, int] = {}
        for instruction in self.instructions:
            counts[instruction.mnemonic] = counts.get(instruction.mnemonic, 0) + 1
        return counts

    def memory_slots(self) -> list[int]:
        """Indices of slots carrying a planned memory access."""
        return [
            index for index, instruction in enumerate(self.instructions)
            if instruction.source_level is not None
        ]
