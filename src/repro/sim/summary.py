"""Kernel summaries: the per-kernel product of the evaluation engine.

A :class:`KernelSummary` condenses everything the steady-state pipeline
model needs to know about a kernel -- per-mnemonic counts, water-filled
functional-unit occupancies, hierarchy-level access counts, the
dependency-cycle bound and the unit-alternation fraction -- into a
small record computed once per kernel (and in O(period) work when the
kernel declares a periodic structure).  Bounds and activity vectors for
any SMT way then derive from the summary with O(units) arithmetic,
so evaluating one kernel across the full CMP/SMT configuration sweep
never re-walks the loop body.

Summaries are produced by
:meth:`repro.sim.pipeline.CorePipelineModel.summarize` and memoized by
the kernel's analytic digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class KernelSummary:
    """Steady-state summary of one kernel on one micro-architecture.

    All per-iteration quantities are per full trip through the loop
    body (``size`` instructions).

    Attributes:
        digest: Analytic digest of the summarized kernel.
        size: Loop-body length in instructions.
        mnemonic_counts: Instructions per iteration, by mnemonic.
        level_counts: Memory accesses per iteration sourced by each
            hierarchy level, plus ``_loads``/``_stores`` pseudo-levels
            backing the L1 reference counters.
        miss_latency: Total off-L1 miss latency per iteration, cycles.
        dependency_bound: Maximum cycle mean of the register dependence
            graph, cycles per iteration.
        unit_loads: Water-filled pipe-occupancy cycles per functional
            unit per iteration (flexible operations assigned).
        unit_bound: Binding per-unit occupancy over pipe count, cycles
            per iteration, before SMT capacity sharing.
        unit_ops: Operations per iteration injected into each unit,
            with flexible operations split in proportion to the
            water-filled occupancy.
        alternation: Fraction of adjacent slots executing on different
            units.
        entropy: Operand-data entropy of the kernel.
        fixed_occupancy: Pre-water-fill pipe-occupancy cycles per
            iteration per unit from fixed usages.  The mixed-core SMT
            solver re-water-fills these jointly across dissimilar
            co-runners sharing a core.
        flexible_occupancy: Pre-water-fill occupancy per candidate
            unit set from flexible usages.
    """

    digest: int
    size: int
    mnemonic_counts: dict[str, int]
    level_counts: dict[str, float]
    miss_latency: float
    dependency_bound: float
    unit_loads: dict[str, float]
    unit_bound: float
    unit_ops: dict[str, float]
    alternation: float
    entropy: float = field(default=1.0)
    fixed_occupancy: dict[str, float] = field(default_factory=dict)
    flexible_occupancy: dict[tuple[str, ...], float] = field(
        default_factory=dict
    )
