"""Functional set-associative cache with true-LRU replacement.

This is the reference implementation used to *validate* the analytical
cache model of :mod:`repro.march.cache_model`: the property tests drive
both with the same address streams and require matching steady-state
hit distributions, exactly the check a real machine would provide.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.march.caches import CacheGeometry


class SetAssociativeCache:
    """A single cache level with LRU replacement.

    Lookups operate on byte addresses; internally the cache tracks line
    addresses per set with an ordered dict as the recency stack.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(geometry.sets)
        ]
        self.hits = 0
        self.misses = 0

    def reset_statistics(self) -> None:
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Invalidate all lines and clear statistics."""
        for line_set in self._sets:
            line_set.clear()
        self.reset_statistics()

    def access(self, address: int) -> bool:
        """Access ``address``; returns ``True`` on hit.

        On a miss the line is installed, evicting the LRU line if the
        set is full.
        """
        fields = self.geometry.fields
        set_index = fields.set_index(address)
        line = fields.line_address(address)
        line_set = self._sets[set_index]
        if line in line_set:
            line_set.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        if len(line_set) >= self.geometry.ways:
            line_set.popitem(last=False)
        line_set[line] = None
        return False

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is resident (no update)."""
        fields = self.geometry.fields
        line_set = self._sets[fields.set_index(address)]
        return fields.line_address(address) in line_set

    def occupancy(self, set_index: int) -> int:
        """Number of resident lines in one set."""
        return len(self._sets[set_index])

    @property
    def accesses(self) -> int:
        return self.hits + self.misses
