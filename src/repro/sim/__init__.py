"""POWER7-like CMP/SMT machine substrate.

The paper measures a real IBM BladeCenter PS701 (POWER7, 8 cores, 4-way
SMT) through EnergyScale/TPMD power sensors and PCL performance
counters.  This package is the substitution: an analytic performance
model plus a *hidden* ground-truth power model, observed only through
noisy sensors and performance counters.

Modeling code (``repro.power_model``) must never import
:mod:`repro.sim.power`; it sees only :class:`~repro.measure.measurement.Measurement`
objects, preserving the paper's post-silicon blindness.
"""

from repro.sim.activity import ThreadActivity
from repro.sim.cache import SetAssociativeCache
from repro.sim.config import MachineConfig, parse_config, standard_configurations
from repro.sim.hierarchy import CacheHierarchy, simulate_hit_distribution
from repro.sim.kernel import Kernel, KernelInstruction
from repro.sim.machine import Machine
from repro.sim.pipeline import CorePipelineModel, PipelineBounds
from repro.sim.placement import Placement
from repro.sim.pstate import NOMINAL, PState, get_pstate, standard_pstates
from repro.sim.topology import (
    ChipTopology,
    CoreCluster,
    parse_topology,
    topology_from_arch,
    topology_ladder,
)

__all__ = [
    "CacheHierarchy",
    "ChipTopology",
    "CoreCluster",
    "CorePipelineModel",
    "Kernel",
    "KernelInstruction",
    "Machine",
    "MachineConfig",
    "NOMINAL",
    "PState",
    "PipelineBounds",
    "Placement",
    "SetAssociativeCache",
    "ThreadActivity",
    "get_pstate",
    "parse_config",
    "parse_topology",
    "simulate_hit_distribution",
    "standard_configurations",
    "standard_pstates",
    "topology_from_arch",
    "topology_ladder",
]
