"""Heterogeneous chip topologies: named clusters of unlike cores.

The paper characterizes one homogeneous CMP/SMT chip; modern
energy-characterization targets are heterogeneous (ARM big.LITTLE
phones, per-domain-DVFS server parts).  A :class:`ChipTopology`
generalizes :class:`~repro.sim.config.MachineConfig` from "N identical
cores" to "an ordered set of named core clusters", each with its own

* **core class** -- a registered micro-architecture definition
  (pipeline widths, unit mix, caches, clock) implementing the
  cluster's cores; ``None`` means the machine's base architecture;
* **core count** and **SMT level**;
* **operating point** -- a per-cluster DVFS domain, so ``4big@p2 +
  4little`` runs the big cluster down-volted while the little cluster
  stays nominal.

The single-cluster, base-class, nominal-name spelling is the *exact
degenerate case* of the old world: its label renders as the historical
``cores-smt[@p]`` string and :meth:`ChipTopology.degenerate_config`
recovers the equivalent :class:`MachineConfig`, which every consumer
(machine, plan cells, stores) collapses to -- making the old
configurations bit-identical by construction (labels, seeds, counters,
noise draws and store keys; enforced by the degeneracy property suite).

Label grammar (also the CLI ``--topology`` grammar)::

    topology := cluster ("+" cluster)*
    cluster  := COUNT [NAME] ["-" SMT] ["@" PSTATE]

    4-4            one unnamed (base-class) cluster, 4 cores, SMT-4
    4big+4little   4 big cores + 4 little cores, SMT-1, nominal
    4big-2@p2+4little-2   both clusters SMT-2, big cluster at p2

Cluster *names* resolve to core classes through a name map
(:data:`DEFAULT_CORE_CLASSES`: ``big`` is the base class, ``little`` /
``eco`` are the bundled POWER7_ECO LITTLE class); unnamed clusters are
always the base class.
"""

from __future__ import annotations

import re
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, replace

from repro.sim.config import MachineConfig
from repro.sim.pstate import NOMINAL, PState, get_pstate

#: Cluster-name -> core-class resolution used by :func:`parse_topology`.
#: ``None`` maps to the running machine's base architecture.
DEFAULT_CORE_CLASSES: dict[str, str | None] = {
    "big": None,
    "little": "POWER7_ECO",
    "eco": "POWER7_ECO",
}

_CLUSTER_RE = re.compile(
    r"^(?P<cores>\d+)(?P<name>[A-Za-z_]*)"
    r"(?:-(?P<smt>\d+))?(?:@(?P<pstate>[\w.+-]+))?$"
)


@dataclass(frozen=True)
class CoreCluster:
    """One cluster of identical cores inside a heterogeneous chip.

    Attributes:
        name: Cluster name; empty for the unnamed (degenerate) cluster.
        cores: Enabled cores in the cluster.
        smt: Hardware threads per cluster core (1, 2 or 4).
        p_state: The cluster's own DVFS operating point.
        core_class: Architecture name of the core class; ``None`` means
            the machine's base architecture.
    """

    name: str = ""
    cores: int = 1
    smt: int = 1
    p_state: PState = NOMINAL
    core_class: str | None = None

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cluster cores must be >= 1")
        if self.smt not in (1, 2, 4):
            raise ValueError("cluster smt must be 1, 2 or 4")
        if self.name and not self.name.isidentifier():
            raise ValueError(f"bad cluster name {self.name!r}")

    @property
    def threads(self) -> int:
        """Hardware thread contexts the cluster contributes."""
        return self.cores * self.smt

    @property
    def smt_enabled(self) -> bool:
        """Whether the cluster's SMT control logic is switched on."""
        return self.smt > 1

    @property
    def label(self) -> str:
        """Cluster part of the topology label.

        The unnamed cluster renders exactly like a
        :class:`MachineConfig` (``4-4``, ``4-4@p2``) -- labels seed
        sensor noise, so the degenerate spelling draws the exact
        pre-refactor noise.  Named clusters elide ``-1`` (``4big``,
        ``4big-2@p2``).
        """
        base = f"{self.cores}{self.name}"
        if not self.name or self.smt != 1:
            base += f"-{self.smt}"
        if not self.p_state.is_nominal:
            base += f"@{self.p_state.name}"
        return base

    def with_p_state(self, p_state: PState) -> "CoreCluster":
        """The same cluster at a different operating point."""
        return replace(self, p_state=p_state)

    def __str__(self) -> str:
        return self.label

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able form, round-tripped by :meth:`from_dict`."""
        return {
            "name": self.name,
            "cores": self.cores,
            "smt": self.smt,
            "p_state": self.p_state.to_dict(),
            "core_class": self.core_class,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoreCluster":
        """Rebuild a cluster serialized by :meth:`to_dict`."""
        p_state = data.get("p_state")
        return cls(
            name=data.get("name", ""),
            cores=data["cores"],
            smt=data["smt"],
            p_state=PState.from_dict(p_state) if p_state else NOMINAL,
            core_class=data.get("core_class"),
        )


@dataclass(frozen=True)
class ChipTopology:
    """An ordered set of core clusters forming one chip.

    Hashable and usable everywhere a :class:`MachineConfig` is: in
    ``Machine.run``/``run_many``, plan cells, sweep dictionaries and
    measurement records.  Cluster order is physical (it fixes the
    core-major thread order of counter readings) and enters the label.
    """

    clusters: tuple[CoreCluster, ...]

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError("topology needs at least one cluster")
        labels = [cluster.label for cluster in self.clusters]
        if len(set(labels)) != len(labels):
            raise ValueError(
                f"topology clusters must be distinguishable, got {labels}"
            )

    # -- shape -----------------------------------------------------------------

    @property
    def cores(self) -> int:
        """Total enabled cores across clusters."""
        return sum(cluster.cores for cluster in self.clusters)

    @property
    def threads(self) -> int:
        """Total hardware thread contexts, cluster-major."""
        return sum(cluster.threads for cluster in self.clusters)

    @property
    def smt_enabled(self) -> bool:
        """Whether any cluster runs with SMT switched on."""
        return any(cluster.smt_enabled for cluster in self.clusters)

    @property
    def smt(self) -> int:
        """Maximum SMT way across clusters (model-facing summary)."""
        return max(cluster.smt for cluster in self.clusters)

    @property
    def label(self) -> str:
        """``+``-joined cluster labels, e.g. ``4big@p2+4little-2``."""
        return "+".join(cluster.label for cluster in self.clusters)

    @property
    def core_classes(self) -> tuple[str | None, ...]:
        """Distinct core classes, first-appearance order."""
        seen: list[str | None] = []
        for cluster in self.clusters:
            if cluster.core_class not in seen:
                seen.append(cluster.core_class)
        return tuple(seen)

    def cluster_slices(self) -> list[tuple[CoreCluster, slice]]:
        """Per cluster, its thread span in core-major thread order."""
        spans = []
        start = 0
        for cluster in self.clusters:
            spans.append((cluster, slice(start, start + cluster.threads)))
            start += cluster.threads
        return spans

    # -- degeneracy ------------------------------------------------------------

    def degenerate_config(self) -> MachineConfig | None:
        """The equivalent :class:`MachineConfig`, if one exists.

        A topology is degenerate when it is a single *unnamed* cluster
        on the base core class -- exactly the old world spelled new.
        Named single clusters are not degenerate: their labels (and
        therefore noise seeds) differ, so they are physically distinct
        measurements.
        """
        if len(self.clusters) != 1:
            return None
        only = self.clusters[0]
        if only.name or only.core_class is not None:
            return None
        return MachineConfig(
            cores=only.cores, smt=only.smt, p_state=only.p_state
        )

    @classmethod
    def from_config(cls, config: MachineConfig) -> "ChipTopology":
        """The one-cluster spelling of a :class:`MachineConfig`."""
        return cls(
            clusters=(
                CoreCluster(
                    cores=config.cores,
                    smt=config.smt,
                    p_state=config.p_state,
                ),
            )
        )

    # -- operating points --------------------------------------------------------

    def with_p_state(self, p_state: PState) -> "ChipTopology":
        """Every cluster at one operating point (uniform DVFS sweep)."""
        return ChipTopology(
            clusters=tuple(
                cluster.with_p_state(p_state) for cluster in self.clusters
            )
        )

    def with_cluster_p_states(
        self, p_states: Sequence[PState]
    ) -> "ChipTopology":
        """Per-cluster operating points, cluster order."""
        if len(p_states) != len(self.clusters):
            raise ValueError(
                f"{len(self.clusters)} clusters need "
                f"{len(self.clusters)} p-states, got {len(p_states)}"
            )
        return ChipTopology(
            clusters=tuple(
                cluster.with_p_state(p_state)
                for cluster, p_state in zip(self.clusters, p_states)
            )
        )

    def __str__(self) -> str:
        return self.label

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able form, round-tripped by :meth:`from_dict`."""
        return {
            "clusters": [cluster.to_dict() for cluster in self.clusters]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChipTopology":
        """Rebuild a topology serialized by :meth:`to_dict`."""
        return cls(
            clusters=tuple(
                CoreCluster.from_dict(cluster)
                for cluster in data["clusters"]
            )
        )


def parse_topology(
    spec: str,
    core_classes: Mapping[str, str | None] | None = None,
) -> ChipTopology:
    """Parse a topology label such as ``4big-2@p2+4little``.

    Args:
        spec: The topology grammar string (see module docstring).
        core_classes: Cluster-name -> architecture-name map; defaults
            to :data:`DEFAULT_CORE_CLASSES`.  Names may also be
            architecture names directly (``4POWER7_ECO``-style names are
            rejected by the grammar; map them instead).

    Raises:
        ValueError: On bad syntax, unknown cluster names or unknown
            p-states.
    """
    if core_classes is None:
        core_classes = DEFAULT_CORE_CLASSES
    clusters = []
    for part in spec.split("+"):
        match = _CLUSTER_RE.match(part.strip())
        if match is None:
            raise ValueError(
                f"bad topology cluster {part!r} in {spec!r}; expected "
                "e.g. 4big, 4-4, 4big-2@p2"
            )
        name = match.group("name")
        if name and name not in core_classes:
            raise ValueError(
                f"unknown cluster name {name!r} in {spec!r}; known: "
                f"{', '.join(sorted(core_classes))}"
            )
        try:
            p_state = (
                get_pstate(match.group("pstate"))
                if match.group("pstate")
                else NOMINAL
            )
            clusters.append(
                CoreCluster(
                    name=name,
                    cores=int(match.group("cores")),
                    smt=int(match.group("smt") or 1),
                    p_state=p_state,
                    core_class=core_classes.get(name) if name else None,
                )
            )
        except (ValueError, KeyError) as exc:
            raise ValueError(
                f"bad topology cluster {part!r} in {spec!r}: {exc}"
            ) from None
    return ChipTopology(clusters=tuple(clusters))


def topology_ladder(
    core_budget: int = 8,
    step: int = 2,
    big_name: str = "big",
    little_name: str = "little",
    smt: int = 1,
    core_classes: Mapping[str, str | None] | None = None,
) -> tuple[ChipTopology, ...]:
    """Big:little ratio ladder at a fixed core budget.

    ``core_budget=8, step=2`` yields ``8big``, ``6big+2little``,
    ``4big+4little``, ``2big+6little``, ``8little`` -- the sweep shape
    cross-architecture campaigns ladder over (cf. freqbench's
    per-cluster curves).
    """
    if core_budget < 1 or step < 1:
        raise ValueError("core budget and step must be >= 1")
    if core_classes is None:
        core_classes = DEFAULT_CORE_CLASSES
    ladder = []
    for big in range(core_budget, -1, -step):
        little = core_budget - big
        clusters = []
        if big:
            clusters.append(
                CoreCluster(
                    name=big_name,
                    cores=big,
                    smt=smt,
                    core_class=core_classes.get(big_name),
                )
            )
        if little:
            clusters.append(
                CoreCluster(
                    name=little_name,
                    cores=little,
                    smt=smt,
                    core_class=core_classes.get(little_name),
                )
            )
        if clusters:
            ladder.append(ChipTopology(clusters=tuple(clusters)))
    return tuple(ladder)


def topology_from_arch(arch) -> ChipTopology | None:
    """The default topology a definition's ``[cluster]`` blocks declare.

    Returns ``None`` for homogeneous definitions.  ``core_class =
    self`` (or the defining architecture's own name) resolves to the
    base class; p-state names resolve against the standard ladder.
    """
    if not getattr(arch, "clusters", ()):
        return None
    clusters = []
    for spec in arch.clusters:
        core_class = (
            None
            if spec.core_class in ("self", arch.name)
            else spec.core_class
        )
        clusters.append(
            CoreCluster(
                name=spec.name,
                cores=spec.cores,
                smt=spec.smt,
                p_state=get_pstate(spec.p_state),
                core_class=core_class,
            )
        )
    return ChipTopology(clusters=tuple(clusters))
