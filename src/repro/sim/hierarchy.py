"""Functional multi-level cache hierarchy with a stride prefetcher.

The hierarchy walks L1 -> L2 -> L3 -> MEM for every access, installing
lines on the way back (inclusive allocation), and classifies each
access by the level that sourced the data.  A simple stride prefetcher
watches the demand stream and, after a few constant-stride accesses,
pulls the next lines into L1 -- this is the hardware behaviour that
forces the analytical cache model to randomize its streams (paper
section 2.1.3).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.march.caches import CacheGeometry, MemoryLevel
from repro.sim.cache import SetAssociativeCache

#: Consecutive equal strides needed before the prefetcher engages.
PREFETCH_CONFIRMATIONS = 3
#: Lines fetched ahead once a stream is confirmed.
PREFETCH_DEPTH = 2


@dataclass
class _StrideDetector:
    """Minimal reference-stride predictor over the demand stream."""

    last_address: int | None = None
    stride: int = 0
    confirmations: int = 0

    def observe(self, address: int) -> int | None:
        """Feed a demand address; returns a confirmed stride or None."""
        detected = None
        if self.last_address is not None:
            stride = address - self.last_address
            if stride != 0 and stride == self.stride:
                self.confirmations += 1
                if self.confirmations >= PREFETCH_CONFIRMATIONS:
                    detected = stride
            else:
                self.stride = stride
                self.confirmations = 1
        self.last_address = address
        return detected


class CacheHierarchy:
    """Functional L1..LN + memory hierarchy for one hardware context."""

    def __init__(
        self,
        caches: Sequence[CacheGeometry],
        memory: MemoryLevel,
        prefetch: bool = True,
    ) -> None:
        self.levels = [SetAssociativeCache(geometry) for geometry in caches]
        self.memory = memory
        self.prefetch = prefetch
        self._detector = _StrideDetector()
        self.source_counts: dict[str, int] = {
            geometry.name: 0 for geometry in caches
        }
        self.source_counts[memory.name] = 0
        self.prefetches_issued = 0

    def reset_statistics(self) -> None:
        for level in self.levels:
            level.reset_statistics()
        for key in self.source_counts:
            self.source_counts[key] = 0
        self.prefetches_issued = 0

    def access(self, address: int) -> str:
        """Demand access; returns the name of the sourcing level."""
        source = self._walk(address)
        self.source_counts[source] += 1
        if self.prefetch:
            stride = self._detector.observe(address)
            if stride is not None:
                self._issue_prefetches(address, stride)
        return source

    def run(self, addresses: Iterable[int]) -> dict[str, int]:
        """Run a full address stream; returns source counts."""
        for address in addresses:
            self.access(address)
        return dict(self.source_counts)

    def _walk(self, address: int) -> str:
        """L1-to-memory walk with allocate-on-fill at every level.

        ``SetAssociativeCache.access`` allocates on miss, so by the time
        the walk resolves, every missed level above the sourcing one has
        installed the line (inclusive behaviour).
        """
        for level in self.levels:
            if level.access(address):
                return level.geometry.name
        return self.memory.name

    def _issue_prefetches(self, address: int, stride: int) -> None:
        """Pull the next lines of a confirmed stream into the hierarchy."""
        for ahead in range(1, PREFETCH_DEPTH + 1):
            target = address + stride * ahead
            if target < 0:
                continue
            self.prefetches_issued += 1
            # Prefetch fills install lines but never count as demand
            # accesses: snapshot and restore the hit/miss statistics.
            saved = [(level.hits, level.misses) for level in self.levels]
            self._walk(target)
            for level, (hits, misses) in zip(self.levels, saved):
                level.hits, level.misses = hits, misses

    def distribution(self) -> dict[str, float]:
        """Fraction of demand accesses sourced by each level."""
        total = sum(self.source_counts.values())
        if total == 0:
            return {name: 0.0 for name in self.source_counts}
        return {
            name: count / total for name, count in self.source_counts.items()
        }


def simulate_hit_distribution(
    caches: Sequence[CacheGeometry],
    memory: MemoryLevel,
    address_cycle: Sequence[int],
    iterations: int = 8,
    warmup_iterations: int = 2,
    prefetch: bool = True,
) -> dict[str, float]:
    """Replay a cyclic address stream and measure the steady-state mix.

    This is the functional-machine check of the analytical model: warm
    up for a few loop iterations, then measure the per-level sourcing
    fractions over the remaining iterations.
    """
    hierarchy = CacheHierarchy(caches, memory, prefetch=prefetch)
    for _ in range(warmup_iterations):
        hierarchy.run(address_cycle)
    hierarchy.reset_statistics()
    for _ in range(iterations):
        hierarchy.run(address_cycle)
    return hierarchy.distribution()
