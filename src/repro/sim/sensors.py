"""TPMD-like power sensor model.

The paper reads the POWER7's Thermal and Power Management Device
through the Flexible Support Processor: milliwatt-granularity samples
at 1 ms intervals.  This module adds the imperfections a real sensor
chain has -- per-sample Gaussian noise, milliwatt quantisation, and a
small run-to-run calibration offset that does *not* average away over
a measurement window (the dominant contributor to model error).

Everything is deterministic given a seed, so experiments reproduce
bit-for-bit.
"""

from __future__ import annotations

import math
import random
import zlib
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

#: Sensor sampling interval (paper: 1 ms granularity).
SAMPLE_INTERVAL_S = 1e-3
#: Per-sample Gaussian noise, watts.
SAMPLE_NOISE_W = 0.5
#: Run-to-run calibration offset, as a fraction of true power (1 sigma).
RUN_OFFSET_FRACTION = 0.012
#: Sensor quantum: 1 milliwatt.
QUANTUM_W = 1e-3


def stable_seed(*parts: object) -> int:
    """Deterministic 32-bit seed from arbitrary labels.

    Uses CRC32 rather than ``hash()`` so results do not depend on
    Python's per-process hash randomization.

    Measurement identity flows in through the parts: the workload (or
    placement) name, the configuration label -- which embeds the DVFS
    p-state when non-nominal, so every operating point draws fresh
    noise -- the window length, the machine seed, and a content salt
    (kernel digest, or the placement's canonical per-thread digest
    combination, which is invariant under co-runner permutation).
    """
    text = "|".join(str(part) for part in parts)
    return zlib.crc32(text.encode())


@dataclass(frozen=True)
class SensorSummary:
    """Reduced statistics of a sensor trace over one window."""

    mean_power: float
    power_std: float
    sample_count: int


# -- batched Mersenne-Twister seeding -----------------------------------------
#
# The noise draws of a measurement cell are, by contract, the first two
# ``random.Random(seed).gauss`` values -- which consume exactly the
# first two uniform doubles of a CPython-seeded MT19937 stream.  The
# per-cell generator construction (~6 us of C state initialization) is
# the throughput floor of the whole measurement plane, so the batched
# sensor replays CPython's seeding *across all cells at once* as uint32
# array arithmetic: ``random_seed`` for a sub-2^32 integer key is
# ``init_by_array`` over a single-word key, a pair of sequential
# 624-step mixing recurrences that vectorize perfectly across cells.
# Only the first four raw outputs are needed, so the twist runs for
# four rows instead of 624.  Everything below is integer arithmetic mod
# 2^32 (bit-exact on any platform) except the final uniform-double
# conversion, which replays the C double expression operation for
# operation; the Gaussian trig is then evaluated per cell with the
# same ``math`` functions ``random.gauss`` uses.  A property test
# asserts draw-for-draw equality with ``random.Random``.

_MT_N = 624
_MT_M = 397
_MT_UPPER = np.uint32(0x8000_0000)
_MT_LOWER = np.uint32(0x7FFF_FFFF)
_MT_MATRIX_A = np.uint32(0x9908_B0DF)
#: Minimum *cache-miss* count for the vectorized seeding; the 1247
#: sequential mixing steps are vector ops whose fixed dispatch
#: overhead needs a wide batch to amortize.  Below this the exact
#: per-cell C loop wins (measured crossover ~500 fresh seeds).  Note
#: this threshold only applies to seeds the draw cache has never seen:
#: re-measured cells skip seeding entirely at any batch size, which is
#: what pushes the *effective* crossover to 1 for warm campaigns.
MT_BATCH_MIN = 512


def _mt_base_state() -> np.ndarray:
    """State after ``init_genrand(19650218)`` -- shared by every seed."""
    state = [19650218]
    for index in range(1, _MT_N):
        previous = state[-1]
        state.append(
            (1812433253 * (previous ^ (previous >> 30)) + index)
            & 0xFFFF_FFFF
        )
    return np.array(state, dtype=np.uint32)


_MT_BASE = _mt_base_state()


def _mt_first_uniform_pairs(seeds: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
    """First two ``random()`` doubles of ``random.Random(seed)``, batched.

    Seeds must be non-negative and below 2^32 (``stable_seed`` values
    always are), so CPython's ``init_by_array`` key is the single word
    ``seed``.  Returns two float64 arrays, bit-identical per element to
    the scalar generator's first two uniforms.
    """
    key = np.asarray(seeds, dtype=np.uint32)
    cells = key.shape[0]
    state = np.empty((_MT_N, cells), dtype=np.uint32)
    state[:] = _MT_BASE[:, None]

    # init_by_array, single-word key: j stays 0 throughout loop 1.
    # The recurrences are sequential in the state index but vectorize
    # across cells; in-place ufuncs keep each step allocation-free.
    mult1 = np.uint32(1664525)
    mult2 = np.uint32(1566083941)
    scratch = np.empty_like(key)
    xor = np.bitwise_xor
    rshift = np.right_shift
    i = 1
    for _ in range(_MT_N):
        previous = state[i - 1]
        rshift(previous, 30, out=scratch)
        xor(scratch, previous, out=scratch)
        scratch *= mult1
        row = state[i]
        row ^= scratch
        row += key
        i += 1
        if i >= _MT_N:
            state[0] = state[_MT_N - 1]
            i = 1
    for _ in range(_MT_N - 1):
        previous = state[i - 1]
        rshift(previous, 30, out=scratch)
        xor(scratch, previous, out=scratch)
        scratch *= mult2
        row = state[i]
        row ^= scratch
        row -= np.uint32(i)
        i += 1
        if i >= _MT_N:
            state[0] = state[_MT_N - 1]
            i = 1
    state[0] = _MT_UPPER

    # First four outputs of the twist (rows 0..3 only: they depend on
    # original rows 0..4 and 397..400 alone).
    y = (state[0:4] & _MT_UPPER) | (state[1:5] & _MT_LOWER)
    raw = state[_MT_M : _MT_M + 4] ^ (y >> np.uint32(1)) ^ (
        (y & np.uint32(1)) * _MT_MATRIX_A
    )
    # Tempering.
    raw = raw ^ (raw >> np.uint32(11))
    raw = raw ^ ((raw << np.uint32(7)) & np.uint32(0x9D2C_5680))
    raw = raw ^ ((raw << np.uint32(15)) & np.uint32(0xEFC6_0000))
    raw = raw ^ (raw >> np.uint32(18))

    # random_random(): (a>>5) * 67108864.0 + (b>>6), scaled by 2^-53.
    scale = 1.0 / 9007199254740992.0
    first = (
        (raw[0] >> np.uint32(5)).astype(np.float64) * 67108864.0
        + (raw[1] >> np.uint32(6)).astype(np.float64)
    ) * scale
    second = (
        (raw[2] >> np.uint32(5)).astype(np.float64) * 67108864.0
        + (raw[3] >> np.uint32(6)).astype(np.float64)
    ) * scale
    return first, second


# -- draw-constant cache ------------------------------------------------------
#
# The two Gaussian draws of a cell factor into per-seed *constants*:
# ``random.gauss(0.0, RUN_OFFSET_FRACTION)`` is ``0.0 +
# (cos(x2pi) * g2rad) * RUN_OFFSET_FRACTION`` (independent of power and
# window), and the second draw is ``0.0 + z2 * sigma`` with ``z2 =
# sin(x2pi) * g2rad`` cached by the generator itself.  Both constants
# are pure functions of the seed, so they memoize like every other
# content-keyed value in the system: once a cell's seed has been seen,
# *no* MT19937 seeding happens on a re-measure -- at any batch size.
# That is what moves the practical vectorization crossover from ~800
# cells to 1.  The cache is two plain-dict generations (cheaper per
# hit than an ordered LRU) swapped at capacity, so memory stays
# bounded without per-access bookkeeping.

#: Seeds retained per generation (two generations resident).
DRAW_CACHE_GENERATION = 1 << 18

_TWO_PI = 2.0 * math.pi


class _DrawCache:
    """Two-generation seed -> (offset-draw, residual-z) memo."""

    __slots__ = ("current", "previous", "hits", "misses")

    def __init__(self) -> None:
        self.current: dict[int, tuple[float, float]] = {}
        self.previous: dict[int, tuple[float, float]] = {}
        self.hits = 0
        self.misses = 0

    def rotate_if_full(self) -> None:
        if len(self.current) >= DRAW_CACHE_GENERATION:
            self.previous = self.current
            self.current = {}

    def clear(self) -> None:
        self.current = {}
        self.previous = {}

    def stats(self) -> dict:
        return {
            "name": "sensor.draws",
            "size": len(self.current) + len(self.previous),
            "capacity": 2 * DRAW_CACHE_GENERATION,
            "hits": self.hits,
            "misses": self.misses,
        }


_DRAWS = _DrawCache()


def draw_cache_stats() -> dict:
    """Hit/miss/size counters of the sensor draw-constant cache."""
    return _DRAWS.stats()


def _scalar_draw_constants(seed: int, rng: random.Random) -> tuple[float, float]:
    """One seed's draw constants via the exact ``random.gauss`` arithmetic.

    ``Random.seed`` resets the cached gauss pair, so a reused generator
    draws exactly like a freshly constructed one.
    """
    rng.seed(seed)
    u1 = rng.random()
    u2 = rng.random()
    x2pi = u1 * _TWO_PI  # random.gauss's TWOPI
    g2rad = math.sqrt(-2.0 * math.log(1.0 - u2))
    zo1 = 0.0 + (math.cos(x2pi) * g2rad) * RUN_OFFSET_FRACTION
    z2 = math.sin(x2pi) * g2rad
    return zo1, z2


def draw_constants(seeds: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
    """Per-seed draw constants ``(zo1, z2)`` for a whole batch.

    ``zo1[i]`` is the first ``gauss(0.0, RUN_OFFSET_FRACTION)`` value of
    ``random.Random(seeds[i])`` and ``z2[i]`` the generator's cached
    second normal (to be scaled by the caller's sigma), both bit-exact.
    Cached seeds resolve with no seeding at all; fresh seeds batch
    through the vectorized MT19937 replay when there are enough of them
    to amortize its fixed dispatch cost, and fall back to the exact
    per-seed C loop otherwise.
    """
    count = len(seeds)
    zo1 = np.empty(count)
    z2 = np.empty(count)
    cache = _DRAWS
    current = cache.current
    previous = cache.previous
    miss_positions: list[int] = []
    miss_seeds: list[int] = []
    get_current = current.get
    get_previous = previous.get
    hits = 0
    for position, seed in enumerate(seeds):
        pair = get_current(seed)
        if pair is None:
            pair = get_previous(seed)
            if pair is None:
                miss_positions.append(position)
                miss_seeds.append(seed)
                continue
            current[seed] = pair  # promote across the generation swap
        hits += 1
        zo1[position] = pair[0]
        z2[position] = pair[1]
    cache.hits += hits
    cache.misses += len(miss_seeds)
    if miss_seeds:
        cache.rotate_if_full()
        current = cache.current
        if len(miss_seeds) >= MT_BATCH_MIN:
            # Wide miss batches vectorize the seeding; the Gaussian
            # trig stays per cell with ``math``'s functions (numpy's
            # SIMD trig may differ in the last ulp, and the draw
            # contract is pinned to ``random.gauss``'s arithmetic).
            first, second = _mt_first_uniform_pairs(miss_seeds)
            cos, sin = math.cos, math.sin
            log, sqrt = math.log, math.sqrt
            for position, seed, u1, u2 in zip(
                miss_positions, miss_seeds, first.tolist(), second.tolist()
            ):
                x2pi = u1 * _TWO_PI
                g2rad = sqrt(-2.0 * log(1.0 - u2))
                pair = (
                    0.0 + (cos(x2pi) * g2rad) * RUN_OFFSET_FRACTION,
                    sin(x2pi) * g2rad,
                )
                zo1[position] = pair[0]
                z2[position] = pair[1]
                current[seed] = pair
        else:
            rng = random.Random()
            for position, seed in zip(miss_positions, miss_seeds):
                pair = _scalar_draw_constants(seed, rng)
                zo1[position] = pair[0]
                z2[position] = pair[1]
                current[seed] = pair
    return zo1, z2


class PowerSensor:
    """Samples a constant true power over a measurement window."""

    def measure(
        self, true_power: float, duration: float, seed: int
    ) -> SensorSummary:
        """Summarize a window without materializing the trace.

        The mean of ``n`` per-sample noise draws is itself Gaussian
        with sigma ``SAMPLE_NOISE_W / sqrt(n)``; the run offset applies
        in full.  Both draws come from the seeded generator, so
        :meth:`synthesize_trace` reproduces statistically consistent
        traces for the same seed.
        """
        return self.measure_many([true_power], duration, [seed])[0]

    def measure_many(
        self,
        true_powers: Sequence[float],
        duration: float,
        seeds: Sequence[int],
    ) -> list[SensorSummary]:
        """Summarize a whole batch of windows sharing one duration.

        Each returned summary is bit-identical to a standalone
        :meth:`measure` call with the same power, duration and seed;
        see :meth:`measure_batch` for how the draws are batched.
        """
        means, power_std, sample_count = self.measure_batch(
            true_powers, duration, seeds
        )
        return [
            SensorSummary(
                mean_power=mean,
                power_std=power_std,
                sample_count=sample_count,
            )
            for mean in means
        ]

    def measure_batch(
        self,
        true_powers: Sequence[float],
        duration: float,
        seeds: Sequence[int],
    ) -> tuple[list[float], float, int]:
        """``(mean powers, power std, sample count)`` for a whole batch.

        This is the sensor half of the vectorized measurement plane.
        The noise contract is irreducibly per-cell -- every window's
        draws come from its own ``stable_seed``-seeded generator, so a
        measurement can never depend on batch composition or order --
        but the draws factor into per-seed constants served by the
        draw cache (:func:`draw_constants`), leaving only the
        power/sigma application per call: pure Python for narrow
        batches, one elementwise pass for wide ones.  Both replay
        ``random.gauss``'s arithmetic operation for operation.
        """
        sample_count = max(1, int(duration / SAMPLE_INTERVAL_S))
        sigma = SAMPLE_NOISE_W / sample_count ** 0.5
        count = len(true_powers)
        if count < 8:
            zo1, z2 = draw_constants(seeds)
            zo1_list = zo1.tolist()
            z2_list = z2.tolist()
            means = []
            for power, o, z in zip(true_powers, zo1_list, z2_list):
                # Exactly the scalar walk: mean = power + gauss1*power
                # + gauss2, with gauss1 = 0.0 + z1*RUN_OFFSET_FRACTION
                # (folded into o) and gauss2 = 0.0 + z2*sigma.
                mean = power + o * power + (0.0 + z * sigma)
                means.append(round(mean / QUANTUM_W) * QUANTUM_W)
            return means, SAMPLE_NOISE_W, sample_count
        zo1, z2 = draw_constants(seeds)
        power = np.asarray(true_powers, dtype=np.float64)
        mean = (power + zo1 * power) + (0.0 + z2 * sigma)
        means = (np.round(mean / QUANTUM_W) * QUANTUM_W).tolist()
        return means, SAMPLE_NOISE_W, sample_count

    def synthesize_trace(
        self, true_power: float, duration: float, seed: int
    ) -> np.ndarray:
        """Full 1 ms-granularity trace for plotting/analysis examples."""
        sample_count = max(1, int(duration / SAMPLE_INTERVAL_S))
        rng = np.random.default_rng(seed)
        offset = random.Random(seed).gauss(0.0, RUN_OFFSET_FRACTION) * true_power
        samples = true_power + offset + rng.normal(
            0.0, SAMPLE_NOISE_W, sample_count
        )
        return np.round(samples / QUANTUM_W) * QUANTUM_W
