"""TPMD-like power sensor model.

The paper reads the POWER7's Thermal and Power Management Device
through the Flexible Support Processor: milliwatt-granularity samples
at 1 ms intervals.  This module adds the imperfections a real sensor
chain has -- per-sample Gaussian noise, milliwatt quantisation, and a
small run-to-run calibration offset that does *not* average away over
a measurement window (the dominant contributor to model error).

Everything is deterministic given a seed, so experiments reproduce
bit-for-bit.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

import numpy as np

#: Sensor sampling interval (paper: 1 ms granularity).
SAMPLE_INTERVAL_S = 1e-3
#: Per-sample Gaussian noise, watts.
SAMPLE_NOISE_W = 0.5
#: Run-to-run calibration offset, as a fraction of true power (1 sigma).
RUN_OFFSET_FRACTION = 0.012
#: Sensor quantum: 1 milliwatt.
QUANTUM_W = 1e-3


def stable_seed(*parts: object) -> int:
    """Deterministic 32-bit seed from arbitrary labels.

    Uses CRC32 rather than ``hash()`` so results do not depend on
    Python's per-process hash randomization.

    Measurement identity flows in through the parts: the workload (or
    placement) name, the configuration label -- which embeds the DVFS
    p-state when non-nominal, so every operating point draws fresh
    noise -- the window length, the machine seed, and a content salt
    (kernel digest, or the placement's canonical per-thread digest
    combination, which is invariant under co-runner permutation).
    """
    text = "|".join(str(part) for part in parts)
    return zlib.crc32(text.encode())


@dataclass(frozen=True)
class SensorSummary:
    """Reduced statistics of a sensor trace over one window."""

    mean_power: float
    power_std: float
    sample_count: int


class PowerSensor:
    """Samples a constant true power over a measurement window."""

    def measure(
        self, true_power: float, duration: float, seed: int
    ) -> SensorSummary:
        """Summarize a window without materializing the trace.

        The mean of ``n`` per-sample noise draws is itself Gaussian
        with sigma ``SAMPLE_NOISE_W / sqrt(n)``; the run offset applies
        in full.  Both draws come from the seeded generator, so
        :meth:`synthesize_trace` reproduces statistically consistent
        traces for the same seed.
        """
        sample_count = max(1, int(duration / SAMPLE_INTERVAL_S))
        rng = random.Random(seed)
        offset = rng.gauss(0.0, RUN_OFFSET_FRACTION) * true_power
        residual_mean = rng.gauss(0.0, SAMPLE_NOISE_W / sample_count ** 0.5)
        mean = true_power + offset + residual_mean
        mean = round(mean / QUANTUM_W) * QUANTUM_W
        return SensorSummary(
            mean_power=mean,
            power_std=SAMPLE_NOISE_W,
            sample_count=sample_count,
        )

    def synthesize_trace(
        self, true_power: float, duration: float, seed: int
    ) -> np.ndarray:
        """Full 1 ms-granularity trace for plotting/analysis examples."""
        sample_count = max(1, int(duration / SAMPLE_INTERVAL_S))
        rng = np.random.default_rng(seed)
        offset = random.Random(seed).gauss(0.0, RUN_OFFSET_FRACTION) * true_power
        samples = true_power + offset + rng.normal(
            0.0, SAMPLE_NOISE_W, sample_count
        )
        return np.round(samples / QUANTUM_W) * QUANTUM_W
