"""DVFS operating points (p-states).

The paper characterizes one fixed operating point; real energy
characterization campaigns sweep voltage/frequency pairs as well
(cf. the system-level V/f-scaling characterization literature).  A
:class:`PState` captures one operating point as *scales relative to
the nominal point* of whatever chip it is applied to, so the same
ladder retargets with the micro-architecture definition files:

* ``freq_scale`` multiplies the chip's nominal clock -- all steady-state
  per-second rates (and therefore the dynamic ``f`` term of
  ``P = C * V^2 * f``) scale with it, while per-cycle quantities (IPC,
  cycles per iteration) stay put;
* ``volt_scale`` multiplies the nominal supply voltage -- dynamic power
  scales with its square.  Static power is modeled as
  frequency-independent and is left unscaled.

The nominal p-state is the exact identity: every scale is ``1.0``, so
measurement paths that carry it reproduce pre-DVFS results bit for bit
(the multiplications are skipped, not merely neutral).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class PState:
    """One voltage/frequency operating point, relative to nominal.

    Ordering and equality use the physical scales only, so two ladders
    naming the same operating point differently compare equal and a
    ladder sorts by frequency.

    Attributes:
        name: Human-readable operating-point name (enters measurement
            labels and therefore sensor noise seeds).
        freq_scale: Clock frequency relative to nominal (> 0).
        volt_scale: Supply voltage relative to nominal (> 0).
    """

    name: str = field(compare=False)
    freq_scale: float = 1.0
    volt_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("p-state needs a name")
        if self.freq_scale <= 0 or self.volt_scale <= 0:
            raise ValueError(
                f"p-state {self.name!r}: scales must be positive"
            )

    @property
    def is_nominal(self) -> bool:
        """Whether this point is the exact pre-DVFS identity."""
        return self.freq_scale == 1.0 and self.volt_scale == 1.0

    @property
    def dynamic_scale(self) -> float:
        """Dynamic-power multiplier beyond the rate scaling.

        Activity rates already carry the ``f`` term (they are
        per-second quantities), so the remaining factor is ``V^2``.
        """
        return self.volt_scale * self.volt_scale

    def __str__(self) -> str:
        return self.name

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able form, round-tripped by :meth:`from_dict`."""
        return {
            "name": self.name,
            "freq_scale": self.freq_scale,
            "volt_scale": self.volt_scale,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PState":
        """Rebuild a p-state serialized by :meth:`to_dict`."""
        return cls(
            name=data["name"],
            freq_scale=data["freq_scale"],
            volt_scale=data["volt_scale"],
        )


#: The pre-DVFS operating point: the exact identity.
NOMINAL = PState("nominal", 1.0, 1.0)

#: A plausible POWER7-class DVFS ladder (EnergyScale-style): one turbo
#: step above nominal and two voltage/frequency steps below it.  The
#: voltage steps shrink slower than the frequency steps, as real
#: V/f curves do near the minimum operating voltage.
STANDARD_PSTATES = (
    PState("turbo", 1.10, 1.06),
    NOMINAL,
    PState("p2", 0.85, 0.94),
    PState("p3", 0.70, 0.88),
)

_BY_NAME = {p_state.name: p_state for p_state in STANDARD_PSTATES}


def standard_pstates() -> tuple[PState, ...]:
    """The standard ladder, fastest first."""
    return STANDARD_PSTATES


def get_pstate(name: str) -> PState:
    """Look up a standard-ladder p-state by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown p-state {name!r}; standard ladder: "
            f"{', '.join(_BY_NAME)}"
        ) from None
