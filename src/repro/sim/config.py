"""Machine run configurations (CMP-SMT modes times operating point).

The paper sweeps 24 configurations: 1-8 enabled cores times SMT-1/2/4,
written ``<cores>-<smt>`` (e.g. ``4-4``).  :func:`standard_configurations`
reproduces that sweep order.  A configuration additionally carries the
DVFS operating point it runs at; the default is the nominal
:class:`~repro.sim.pstate.PState`, which keeps every pre-DVFS label,
seed and measurement bit-for-bit unchanged.  Non-nominal points are
labelled ``<cores>-<smt>@<p-state>`` (e.g. ``4-4@p2``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.march.components import ChipGeometry
from repro.sim.pstate import NOMINAL, PState, get_pstate


@dataclass(frozen=True, order=True)
class MachineConfig:
    """One CMP-SMT run configuration at one operating point.

    Attributes:
        cores: Enabled cores.
        smt: Hardware threads per enabled core (1, 2 or 4).
        p_state: DVFS operating point (defaults to nominal).
    """

    cores: int
    smt: int
    p_state: PState = NOMINAL

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.smt not in (1, 2, 4):
            raise ValueError("smt must be 1, 2 or 4")

    @property
    def threads(self) -> int:
        """Total hardware thread contexts in this configuration."""
        return self.cores * self.smt

    @property
    def smt_enabled(self) -> bool:
        """Whether the SMT control logic is switched on."""
        return self.smt > 1

    @property
    def label(self) -> str:
        """Paper-style ``cores-smt`` label, ``@p-state`` when non-nominal.

        The nominal label intentionally omits the operating point: the
        label seeds sensor noise, so keeping it unchanged preserves
        pre-DVFS noise draws bit for bit.
        """
        base = f"{self.cores}-{self.smt}"
        if self.p_state.is_nominal:
            return base
        return f"{base}@{self.p_state.name}"

    def with_p_state(self, p_state: PState) -> "MachineConfig":
        """The same CMP-SMT mode at a different operating point."""
        return replace(self, p_state=p_state)

    def validate_against(self, chip: ChipGeometry) -> None:
        """Raise ``ValueError`` if the chip cannot run this configuration."""
        if self.cores > chip.max_cores:
            raise ValueError(
                f"configuration {self.label} needs {self.cores} cores, "
                f"chip has {chip.max_cores}"
            )
        if self.smt > chip.max_smt:
            raise ValueError(
                f"configuration {self.label} needs SMT-{self.smt}, "
                f"chip supports SMT-{chip.max_smt}"
            )

    def __str__(self) -> str:
        return self.label

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able form, round-tripped by :meth:`from_dict`."""
        return {
            "cores": self.cores,
            "smt": self.smt,
            "p_state": self.p_state.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MachineConfig":
        """Rebuild a configuration serialized by :meth:`to_dict`."""
        p_state = data.get("p_state")
        return cls(
            cores=data["cores"],
            smt=data["smt"],
            p_state=PState.from_dict(p_state) if p_state else NOMINAL,
        )


def standard_configurations(
    max_cores: int = 8,
    smt_modes: tuple[int, ...] = (1, 2, 4),
    p_states: tuple[PState, ...] = (NOMINAL,),
) -> tuple[MachineConfig, ...]:
    """The paper's 24-configuration sweep, cores-major order.

    With more than one ``p_states`` entry the sweep becomes the full
    operating-point product, p-state-major (the whole CMP-SMT sweep is
    repeated per operating point, as a DVFS campaign would run it).
    """
    return tuple(
        MachineConfig(cores=cores, smt=smt, p_state=p_state)
        for p_state in p_states
        for cores in range(1, max_cores + 1)
        for smt in smt_modes
    )


def parse_config(label: str) -> MachineConfig:
    """Parse a ``cores-smt`` label such as ``4-4`` or ``4-4@p2``.

    Non-nominal suffixes resolve against the standard p-state ladder.
    """
    base, _, pstate_part = label.partition("@")
    cores_part, _, smt_part = base.partition("-")
    try:
        p_state = get_pstate(pstate_part) if pstate_part else NOMINAL
        return MachineConfig(
            cores=int(cores_part), smt=int(smt_part), p_state=p_state
        )
    except (ValueError, KeyError) as exc:
        raise ValueError(f"bad configuration label {label!r}: {exc}") from None
