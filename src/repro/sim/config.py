"""Machine run configurations (CMP-SMT modes).

The paper sweeps 24 configurations: 1-8 enabled cores times SMT-1/2/4,
written ``<cores>-<smt>`` (e.g. ``4-4``).  :func:`standard_configurations`
reproduces that sweep order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.march.components import ChipGeometry


@dataclass(frozen=True, order=True)
class MachineConfig:
    """One CMP-SMT run configuration.

    Attributes:
        cores: Enabled cores.
        smt: Hardware threads per enabled core (1, 2 or 4).
    """

    cores: int
    smt: int

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.smt not in (1, 2, 4):
            raise ValueError("smt must be 1, 2 or 4")

    @property
    def threads(self) -> int:
        """Total hardware thread contexts in this configuration."""
        return self.cores * self.smt

    @property
    def smt_enabled(self) -> bool:
        """Whether the SMT control logic is switched on."""
        return self.smt > 1

    @property
    def label(self) -> str:
        """Paper-style ``cores-smt`` label."""
        return f"{self.cores}-{self.smt}"

    def validate_against(self, chip: ChipGeometry) -> None:
        """Raise ``ValueError`` if the chip cannot run this configuration."""
        if self.cores > chip.max_cores:
            raise ValueError(
                f"configuration {self.label} needs {self.cores} cores, "
                f"chip has {chip.max_cores}"
            )
        if self.smt > chip.max_smt:
            raise ValueError(
                f"configuration {self.label} needs SMT-{self.smt}, "
                f"chip supports SMT-{chip.max_smt}"
            )

    def __str__(self) -> str:
        return self.label


def standard_configurations(
    max_cores: int = 8, smt_modes: tuple[int, ...] = (1, 2, 4)
) -> tuple[MachineConfig, ...]:
    """The paper's 24-configuration sweep, cores-major order."""
    return tuple(
        MachineConfig(cores=cores, smt=smt)
        for cores in range(1, max_cores + 1)
        for smt in smt_modes
    )


def parse_config(label: str) -> MachineConfig:
    """Parse a paper-style ``cores-smt`` label such as ``4-4``."""
    cores_part, _, smt_part = label.partition("-")
    try:
        return MachineConfig(cores=int(cores_part), smt=int(smt_part))
    except ValueError as exc:
        raise ValueError(f"bad configuration label {label!r}: {exc}") from None
