"""The Machine facade: run a workload, get a Measurement back.

``Machine.run`` is the substitute for "deploy one copy per hardware
thread, pin the copies, run for 10 seconds, read TPMD power sensors
and PCL performance counters".  Workloads are either
:class:`~repro.sim.kernel.Kernel` objects (generated micro-benchmarks)
or any object implementing the small workload protocol used by the
SPEC proxies::

    workload.name                              -> str
    workload.thread_activity(machine, smt)     -> ThreadActivity

``Machine.run_many`` / ``Machine.run_cells`` / ``Machine.run_plan``
are the batched entry points the measurement campaigns use: they
amortize per-kernel steady-state analysis across the whole batch
through the evaluation engine's summary-digest memoization, and they
route kernel batches through the vectorized measurement plane
(:mod:`repro.sim.vector`), which evaluates whole plans as dense NumPy
tensor passes -- bit-identical to the scalar walk, which remains in
place as the reference implementation (``REPRO_VECTOR=0`` forces it).
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Sequence
from typing import Protocol, runtime_checkable

from repro.caching import LRUCache
from repro.errors import MeasurementError, MicroProbeError
from repro.march.definition import MicroArchitecture, get_architecture
from repro.measure.measurement import DEFAULT_DURATION_S, Measurement
from repro.sim.activity import ThreadActivity
from repro.sim.config import MachineConfig
from repro.sim.kernel import Kernel
from repro.sim.placement import Placement, strict_workload_key, workload_key
from repro.sim.pipeline import CorePipelineModel
from repro.sim.power import GroundTruthPowerModel, topology_power
from repro.sim.sensors import PowerSensor, stable_seed
from repro.sim.topology import ChipTopology, CoreCluster
from repro.sim.vector import VectorPlane

#: Activity vectors retained per machine (LRU eviction past this);
#: one-shot sweeps over huge design spaces never revisit a kernel.
ACTIVITY_CACHE_LIMIT = 65_536


def _vector_enabled_by_default() -> bool:
    """``REPRO_VECTOR=0`` opts out of the tensor plane (debug knob)."""
    return os.environ.get("REPRO_VECTOR", "1") != "0"


class ClusterView:
    """What a cluster hands a profiled workload as "the machine".

    Protocol workloads compute their activity from machine-level facts
    (today: the clock).  On a heterogeneous chip each cluster *is* a
    different machine -- its own core class at its own nominal clock --
    so profiled workloads placed on a cluster resolve against this
    narrow view instead of the whole-machine facade.
    """

    __slots__ = ("arch", "pipeline", "seed")

    def __init__(self, arch, pipeline, seed: int) -> None:
        self.arch = arch
        self.pipeline = pipeline
        self.seed = seed

    @property
    def frequency(self) -> float:
        """The cluster core class's nominal clock, cycles per second."""
        return self.arch.chip.cycles_per_second


@runtime_checkable
class Workload(Protocol):
    """Anything the machine can deploy across its hardware threads."""

    name: str

    def thread_activity(
        self, machine: "Machine", smt: int
    ) -> ThreadActivity:  # pragma: no cover - protocol signature
        ...


class Machine:
    """A POWER7-like CMP/SMT machine with sensors and counters."""

    def __init__(
        self,
        arch: MicroArchitecture | None = None,
        seed: int = 0,
        vector: bool | None = None,
    ) -> None:
        self.arch = arch if arch is not None else get_architecture("POWER7")
        self.pipeline = CorePipelineModel(self.arch)
        self.seed = seed
        self._power = GroundTruthPowerModel(self.arch)
        self._sensor = PowerSensor()
        # Keyed on the kernel's analytic digest: kernels with identical
        # loop-body content share one steady-state analysis regardless
        # of how many Kernel objects carry it; distinct kernels that
        # happen to share a name never alias.
        self._activity_cache: LRUCache[
            tuple[int, int], ThreadActivity
        ] = LRUCache(ACTIVITY_CACHE_LIMIT, "machine.activity")
        # Mixed-core contention solves, keyed on the canonical workload
        # keys of the co-runners plus the SMT way: a placement sweep
        # re-deploying the same mix across cores, configurations and
        # p-states runs the bisection once (solutions are stored at
        # nominal frequency; the p-state re-clock applies on top).
        self._mixed_cache: LRUCache[tuple, list[ThreadActivity]] = LRUCache(
            ACTIVITY_CACHE_LIMIT, "machine.mixed_core"
        )
        # Per-core-class substrate of heterogeneous topologies: each
        # cluster class resolves to its own architecture, pipeline
        # model and hidden power model.  The base class (``None`` or
        # the machine's own architecture name) aliases this machine's
        # objects, so bootstrap write-backs and cache warmth are shared
        # with the homogeneous paths.
        self._cluster_parts: dict[str | None, tuple] = {}
        # The vectorized measurement plane (sim/vector.py): kernel
        # batches evaluate as dense tensor ops, bit-identical to the
        # scalar walk.  ``vector=False`` (or REPRO_VECTOR=0) keeps
        # every measurement on the scalar reference path.
        if vector is None:
            vector = _vector_enabled_by_default()
        self._vector = VectorPlane(self) if vector else None

    @property
    def frequency(self) -> float:
        """Clock frequency in cycles per second."""
        return self.arch.chip.cycles_per_second

    @property
    def vector_enabled(self) -> bool:
        """Whether batches route through the vectorized plane."""
        return self._vector is not None

    # -- running workloads ---------------------------------------------------

    def run(
        self,
        workload: Kernel | Workload | Placement,
        config: MachineConfig | ChipTopology,
        duration: float = DEFAULT_DURATION_S,
    ) -> Measurement:
        """Deploy ``workload`` and measure one window.

        A plain workload is replicated once per hardware thread (the
        paper's deployment); a :class:`~repro.sim.placement.Placement`
        assigns its explicit per-thread workloads instead.  The
        configuration's p-state re-clocks the run and scales dynamic
        power by ``V^2 f``.

        ``config`` may be a heterogeneous
        :class:`~repro.sim.topology.ChipTopology`: the workload is
        deployed across every cluster, each cluster evaluating on its
        own core class at its own operating point.  A degenerate
        single-cluster topology collapses to its
        :class:`~repro.sim.config.MachineConfig` and reproduces the
        homogeneous run bit for bit.

        Raises:
            MeasurementError: If the configuration does not fit the
                chip, the placement does not fit the configuration, or
                the workload does not follow the protocol.
        """
        config = self._canonical(config)
        self._validate(config)
        return self._measure(workload, config, duration)

    def run_many(
        self,
        workloads: Iterable[Kernel | Workload | Placement],
        config: MachineConfig,
        duration: float = DEFAULT_DURATION_S,
    ) -> list[Measurement]:
        """Measure a batch of workloads or placements on one configuration.

        Semantically identical to ``[run(w, config, duration) for w in
        workloads]`` -- same measurements, same sensor noise draws --
        but validates the configuration once and drives every workload
        through the shared summary/activity memoization, which is the
        fast path for design-space exploration and training-suite
        campaigns.  Placements batch the same way: every distinct
        kernel appearing in the batch is summarized once regardless of
        how many placements (or threads) carry it.

        Raises:
            MeasurementError: If the configuration does not fit the chip
                or some workload does not follow the protocol.
        """
        config = self._canonical(config)
        self._validate(config)
        workloads = list(workloads)
        if self._vector is not None:
            batched = self._vector.try_measure_cells(
                [(workload, config, duration) for workload in workloads]
            )
            if batched is not None:
                return batched
        return [
            self._measure(workload, config, duration)
            for workload in workloads
        ]

    def run_cells(self, cells, plan=None) -> list[Measurement]:
        """Measure a heterogeneous batch of plan cells in one pass.

        ``cells`` is any sequence of objects with ``workload``,
        ``config`` and ``duration`` attributes (e.g.
        :class:`~repro.exec.plan.PlanCell`).  Unlike :meth:`run_many`,
        the batch may span many configurations and windows: the
        vectorized measurement plane evaluates every kernel cell of
        the whole batch as *one* tensor pass, which is what lets a
        full 24-configuration sweep amortize its per-batch setup (and
        its sensor seeding) across all cells.  Results are returned in
        cell order, bit-identical to per-cell :meth:`run` calls.

        With ``plan`` given (the immutable
        :class:`~repro.exec.plan.ExperimentPlan` whose ``plan.cells``
        *is* ``cells``), the vector plane compiles the batch into a
        fused tensor program cached weakly under the plan: the first
        run pays canonicalization, validation and compilation once,
        and every re-execution of the same plan object (resident
        service engines, steady-state benches, DSE loops) jumps
        straight to the fused pass.

        Raises:
            MeasurementError: If some configuration does not fit the
                chip or some workload does not follow the protocol.
        """
        if plan is not None and self._vector is not None:
            # Plans are immutable and content-addressed: the compiled
            # program already embeds the canonicalized, validated
            # batch, so a cache hit skips straight to execution.
            program = self._vector.cached_program(plan)
            if program is not None:
                return program.execute()
        # Deduplicate by object identity: plans reuse config objects
        # across cells, and hashing a MachineConfig per cell is more
        # expensive than the validation itself.  Degenerate topologies
        # collapse to their MachineConfig spelling here (plan cells
        # already arrive collapsed; this covers hand-built cells), so
        # the whole downstream batch machinery sees canonical configs.
        distinct = {
            id(cell.config): self._canonical(cell.config) for cell in cells
        }
        for config in distinct.values():
            self._validate(config)
        triples = [
            (cell.workload, distinct[id(cell.config)], cell.duration)
            for cell in cells
        ]
        if self._vector is not None:
            batched = self._vector.try_measure_cells(triples, plan=plan)
            if batched is not None:
                return batched
        return [
            self._measure(workload, config, duration)
            for workload, config, duration in triples
        ]

    def run_plan(self, plan) -> list[Measurement]:
        """Execute a whole :class:`~repro.exec.plan.ExperimentPlan`.

        The plan's unique cells evaluate through :meth:`run_cells`
        (one tensor pass across every configuration), and results fan
        back out to the plan's requested order.  This is the
        in-process fast path; executors add stores and worker sharding
        on top.
        """
        return plan.expand(self.run_cells(plan.cells, plan=plan))

    def cache_stats(self) -> dict:
        """Hit/miss/size counters of every memo cache in the substrate.

        Covers the machine's activity and mixed-core solve caches, the
        pipeline's kernel-digest summary cache, and (when the vector
        plane is enabled) its packed-kernel and stacked-batch caches.
        All of them are size-capped LRUs, so week-long campaigns hold
        memory flat; these counters show whether they are earning
        their keep.
        """
        stats = {
            "activity": self._activity_cache.stats(),
            "mixed_core": self._mixed_cache.stats(),
            "summaries": self.pipeline.cache_stats(),
        }
        if self._vector is not None:
            stats.update(self._vector.cache_stats())
        return stats

    def run_idle(
        self,
        config: MachineConfig | ChipTopology | None = None,
        duration: float = DEFAULT_DURATION_S,
    ) -> Measurement:
        """Measure the machine with no workload (workload-independent power)."""
        config = self._canonical(config or MachineConfig(cores=1, smt=1))
        if isinstance(config, ChipTopology):
            per_thread = []
            for cluster in config.clusters:
                arch = self.cluster_arch(cluster.core_class)
                zeros = {name: 0.0 for name in arch.counters}
                per_thread.extend([zeros] * cluster.threads)
            thread_counters = tuple(per_thread)
        else:
            zero_counters = {name: 0.0 for name in self.arch.counters}
            thread_counters = tuple([zero_counters] * config.threads)
        summary = self._sensor.measure(
            self._power.idle_power(),
            duration,
            stable_seed("<idle>", config.label, duration, self.seed),
        )
        return Measurement(
            workload_name="<idle>",
            config=config,
            duration=duration,
            thread_counters=thread_counters,
            mean_power=summary.mean_power,
            power_std=summary.power_std,
            sample_count=summary.sample_count,
        )

    # -- heterogeneous cluster substrate --------------------------------------

    def cluster_arch(self, core_class: str | None) -> MicroArchitecture:
        """The architecture implementing one cluster core class.

        ``None`` (and the machine's own architecture name) is the base
        class -- this machine's architecture object itself, so bootstrap
        write-backs apply to base-class clusters.  Other names resolve
        through the architecture registry once and are cached.

        Raises:
            MeasurementError: If the class is not a registered
                architecture.
        """
        return self._parts(core_class)[0]

    def _parts(self, core_class: str | None) -> tuple:
        """``(arch, pipeline, power model, cluster view)`` of a class."""
        if core_class == self.arch.name:
            core_class = None
        parts = self._cluster_parts.get(core_class)
        if parts is None:
            if core_class is None:
                arch, pipeline, power = self.arch, self.pipeline, self._power
            else:
                try:
                    arch = get_architecture(core_class)
                except MicroProbeError as exc:
                    raise MeasurementError(
                        f"unknown cluster core class {core_class!r}: {exc}"
                    ) from None
                pipeline = CorePipelineModel(arch)
                power = GroundTruthPowerModel(arch)
            parts = (arch, pipeline, power, ClusterView(arch, pipeline, self.seed))
            self._cluster_parts[core_class] = parts
        return parts

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _canonical(
        config: MachineConfig | ChipTopology,
    ) -> MachineConfig | ChipTopology:
        """Collapse degenerate topologies to their MachineConfig.

        The collapse is the refactor's invariance mechanism: a
        single-cluster base-class topology takes the *same code path*
        (and therefore the same labels, seeds, counters and noise
        draws) as the configuration it degenerates to.
        """
        if isinstance(config, ChipTopology):
            degenerate = config.degenerate_config()
            if degenerate is not None:
                return degenerate
        return config

    def _validate(self, config: MachineConfig | ChipTopology) -> None:
        if isinstance(config, ChipTopology):
            for cluster in config.clusters:
                chip = self._parts(cluster.core_class)[0].chip
                if cluster.cores > chip.max_cores:
                    raise MeasurementError(
                        f"topology {config.label}: cluster "
                        f"{cluster.label!r} needs {cluster.cores} cores, "
                        f"core class has {chip.max_cores}"
                    )
                if cluster.smt > chip.max_smt:
                    raise MeasurementError(
                        f"topology {config.label}: cluster "
                        f"{cluster.label!r} needs SMT-{cluster.smt}, "
                        f"core class supports SMT-{chip.max_smt}"
                    )
            return
        try:
            config.validate_against(self.arch.chip)
        except ValueError as exc:
            raise MeasurementError(str(exc)) from None

    def validate_config(self, config: MachineConfig | ChipTopology) -> None:
        """Public fit check used by plan-build validation.

        Raises:
            MeasurementError: If this machine cannot run ``config``.
        """
        self._validate(self._canonical(config))

    def _measure(
        self,
        workload: Kernel | Workload | Placement,
        config: MachineConfig | ChipTopology,
        duration: float,
    ) -> Measurement:
        if isinstance(config, ChipTopology):
            return self._measure_topology(workload, config, duration)
        if isinstance(workload, Placement):
            return self._measure_placement(workload, config, duration)
        activity = self._run_activity(workload, config)
        counters = self.pipeline.counters_from_activity(
            activity, duration, frequency=self._run_frequency(config)
        )
        true_power = self._power.chip_power(
            [activity] * config.threads, config
        )
        salt = workload.digest() if isinstance(workload, Kernel) else 0
        summary = self._sensor.measure(
            true_power,
            duration,
            stable_seed(workload.name, config.label, duration, self.seed, salt),
        )
        return Measurement(
            workload_name=workload.name,
            config=config,
            duration=duration,
            thread_counters=tuple([counters] * config.threads),
            mean_power=summary.mean_power,
            power_std=summary.power_std,
            sample_count=summary.sample_count,
        )

    def _measure_placement(
        self,
        placement: Placement,
        config: MachineConfig,
        duration: float,
    ) -> Measurement:
        """Measure an explicit per-thread workload assignment.

        Per-thread counters keep the placement's declaration order;
        chip power and the sensor noise salt are evaluated over the
        placement's canonical ordering, so permuting co-runners within
        a core (or whole cores) reproduces the measurement exactly.
        The homogeneous placement takes the same arithmetic path as
        ``run`` -- same activity objects, same power sum, same noise
        seed -- and is therefore bit-identical to it.
        """
        try:
            placement.validate_against(config)
        except ValueError as exc:
            raise MeasurementError(str(exc)) from None
        # Cores carrying the same group (every round-robin mix) share
        # one activity resolution, so their counter dicts alias too.
        group_memo: dict[tuple, list[ThreadActivity]] = {}
        core_activities = []
        for group in placement.core_groups:
            group_key = tuple(
                strict_workload_key(workload) for workload in group
            )
            activities = group_memo.get(group_key)
            if activities is None:
                activities = self._core_activities(group, config)
                group_memo[group_key] = activities
            core_activities.append(activities)
        frequency = self._run_frequency(config)
        # One counter synthesis per distinct activity object: threads
        # sharing an activity (homogeneous cores, repeated mixes) share
        # the counter dict, exactly as the plain path replicates one.
        counter_memo: dict[int, dict[str, float]] = {}

        def counters_for(activity: ThreadActivity) -> dict[str, float]:
            found = counter_memo.get(id(activity))
            if found is None:
                found = self.pipeline.counters_from_activity(
                    activity, duration, frequency=frequency
                )
                counter_memo[id(activity)] = found
            return found

        counters = tuple(
            counters_for(activity)
            for activities in core_activities
            for activity in activities
        )
        true_power = self._power.chip_power(
            [
                core_activities[core][slot]
                for core, slot in placement.canonical_order()
            ],
            config,
        )
        summary = self._sensor.measure(
            true_power,
            duration,
            stable_seed(
                placement.name,
                config.label,
                duration,
                self.seed,
                placement.canonical_salt(),
            ),
        )
        return Measurement(
            workload_name=placement.name,
            config=config,
            duration=duration,
            thread_counters=counters,
            mean_power=summary.mean_power,
            power_std=summary.power_std,
            sample_count=summary.sample_count,
            thread_workloads=placement.thread_names,
        )

    def _run_frequency(self, config: MachineConfig) -> float:
        """Effective clock under the configuration's p-state."""
        return self.frequency * config.p_state.freq_scale

    def _run_activity(
        self, workload: Kernel | Workload, config: MachineConfig
    ) -> ThreadActivity:
        """Steady-state activity re-clocked to the config's p-state."""
        activity = self._resolve_activity(workload, config.smt)
        return activity.at_frequency_scale(config.p_state.freq_scale)

    def _core_activities(
        self, group: Sequence[Kernel | Workload], config: MachineConfig
    ) -> list[ThreadActivity]:
        """Per-slot activities of one core of a placement.

        A homogeneous core degenerates to the cached single-workload
        path; a core mixing distinct kernels goes through the
        pipeline's mixed-core contention solver.  Cores mixing
        profiled workloads (whose SMT behaviour is a published scaling
        curve, not an occupancy model) fall back to each workload's
        own SMT-way activity.
        """
        strict_keys = {
            strict_workload_key(workload) for workload in group
        }
        freq_scale = config.p_state.freq_scale
        if len(strict_keys) == 1:
            activity = self._run_activity(group[0], config)
            return [activity] * config.smt
        if all(isinstance(workload, Kernel) for workload in group):
            # Solve in canonical (workload-identity) order: the
            # solver's accumulation order then never depends on which
            # SMT slot a co-runner was declared in, so permuting
            # co-runners permutes the resulting activities *exactly*
            # (same floats), keeping chip power and noise draws
            # permutation-invariant to the last bit.
            order = sorted(
                range(len(group)),
                key=lambda slot: workload_key(group[slot]),
            )
            cache_key = (
                None,  # base core class (cluster solves carry theirs)
                tuple(workload_key(group[slot]) for slot in order),
                config.smt,
            )
            solved = self._mixed_cache.get(cache_key)
            if solved is None:
                summaries = [
                    self.pipeline.summarize(group[slot]) for slot in order
                ]
                solved = self.pipeline.mixed_core_activities(
                    summaries, config.smt
                )
                self._mixed_cache.put(cache_key, solved)
            activities: list[ThreadActivity | None] = [None] * len(group)
            for slot, activity in zip(order, solved):
                activities[slot] = activity.at_frequency_scale(freq_scale)
            return activities
        return [
            self._run_activity(workload, config) for workload in group
        ]

    def _resolve_activity(
        self, workload: Kernel | Workload, smt: int
    ) -> ThreadActivity:
        # Base-class resolution: protocol workloads see the machine
        # facade itself, exactly as before the cluster refactor.
        return self._resolve_activity_on(
            workload, smt, None, self.pipeline, self
        )

    def _resolve_activity_on(
        self,
        workload: Kernel | Workload,
        smt: int,
        class_key: str | None,
        pipeline: CorePipelineModel,
        view,
    ) -> ThreadActivity:
        """Steady-state activity of one thread on one core class."""
        if isinstance(workload, Kernel):
            key = (class_key, workload.digest(), smt)
            cached = self._activity_cache.get(key)
            if cached is None:
                cached = pipeline.activity(workload, smt)
                self._activity_cache.put(key, cached)
            return cached
        if isinstance(workload, Workload):
            return workload.thread_activity(view, smt)
        raise MeasurementError(
            f"cannot deploy {type(workload).__name__}: not a Kernel and "
            "does not implement the workload protocol"
        )

    # -- heterogeneous topology measurement ------------------------------------

    def _class_key(self, core_class: str | None) -> str | None:
        """Cache-key normalization: the base class is always ``None``."""
        return None if core_class == self.arch.name else core_class

    def _cluster_activity(
        self, workload: Kernel | Workload, cluster: CoreCluster
    ) -> ThreadActivity:
        """One thread's activity on a cluster, re-clocked to its p-state."""
        _, pipeline, _, view = self._parts(cluster.core_class)
        activity = self._resolve_activity_on(
            workload,
            cluster.smt,
            self._class_key(cluster.core_class),
            pipeline,
            view,
        )
        return activity.at_frequency_scale(cluster.p_state.freq_scale)

    def _measure_topology(
        self,
        workload: Kernel | Workload | Placement,
        topology: ChipTopology,
        duration: float,
    ) -> Measurement:
        """Measure a workload replicated across every cluster thread.

        Each cluster resolves the workload on its own core class
        (pipeline widths, unit mix, caches, clock) at its own operating
        point; chip power combines the per-cluster dynamic draws over
        the shared uncore (:func:`~repro.sim.power.topology_power`).
        Counter readings are core-major in cluster declaration order,
        one reading set per hardware thread, synthesized at each
        cluster's effective clock.
        """
        if isinstance(workload, Placement):
            return self._measure_topology_placement(
                workload, topology, duration
            )
        parts = []
        thread_counters: list[dict] = []
        for cluster in topology.clusters:
            arch, pipeline, power, _ = self._parts(cluster.core_class)
            activity = self._cluster_activity(workload, cluster)
            counters = pipeline.counters_from_activity(
                activity,
                duration,
                frequency=arch.chip.cycles_per_second
                * cluster.p_state.freq_scale,
            )
            thread_counters.extend([counters] * cluster.threads)
            parts.append((cluster, power, [activity] * cluster.threads))
        true_power = topology_power(parts, topology.cores)
        salt = workload.digest() if isinstance(workload, Kernel) else 0
        summary = self._sensor.measure(
            true_power,
            duration,
            stable_seed(
                workload.name, topology.label, duration, self.seed, salt
            ),
        )
        return Measurement(
            workload_name=workload.name,
            config=topology,
            duration=duration,
            thread_counters=tuple(thread_counters),
            mean_power=summary.mean_power,
            power_std=summary.power_std,
            sample_count=summary.sample_count,
        )

    def _measure_topology_placement(
        self,
        placement: Placement,
        topology: ChipTopology,
        duration: float,
    ) -> Measurement:
        """Measure an explicit per-thread assignment across clusters.

        Core groups are cluster-major: the first ``clusters[0].cores``
        groups land on cluster 0 (each as wide as that cluster's SMT
        way), and so on.  Chip power and the noise salt are evaluated
        over each cluster segment's canonical ordering, so permuting
        co-runners within a core -- or whole cores *within a cluster*
        -- reproduces the measurement exactly, while moving work
        between clusters is a physically different placement.  The
        homogeneous placement takes the same per-cluster arithmetic as
        the plain topology run and is bit-identical to it.
        """
        try:
            placement.validate_against(topology)
        except ValueError as exc:
            raise MeasurementError(str(exc)) from None
        group_memo: dict[tuple, list[ThreadActivity]] = {}
        counter_memo: dict[tuple, dict[str, float]] = {}
        core_activities: list[list[ThreadActivity]] = []
        thread_counters: list[dict] = []
        core_index = 0
        for cluster in topology.clusters:
            arch, pipeline, _, _ = self._parts(cluster.core_class)
            frequency = (
                arch.chip.cycles_per_second * cluster.p_state.freq_scale
            )
            class_key = self._class_key(cluster.core_class)
            for _ in range(cluster.cores):
                group = placement.core_groups[core_index]
                group_key = (
                    class_key,
                    cluster.smt,
                    cluster.p_state.freq_scale,
                    tuple(strict_workload_key(w) for w in group),
                )
                activities = group_memo.get(group_key)
                if activities is None:
                    activities = self._cluster_core_activities(
                        group, cluster
                    )
                    group_memo[group_key] = activities
                core_activities.append(activities)
                for activity in activities:
                    memo_key = (id(activity), frequency)
                    counters = counter_memo.get(memo_key)
                    if counters is None:
                        counters = pipeline.counters_from_activity(
                            activity, duration, frequency=frequency
                        )
                        counter_memo[memo_key] = counters
                    thread_counters.append(counters)
                core_index += 1
        parts = []
        offset = 0
        for cluster in topology.clusters:
            _, _, power, _ = self._parts(cluster.core_class)
            order = placement.segment_order(offset, offset + cluster.cores)
            parts.append(
                (
                    cluster,
                    power,
                    [core_activities[core][slot] for core, slot in order],
                )
            )
            offset += cluster.cores
        true_power = topology_power(parts, topology.cores)
        summary = self._sensor.measure(
            true_power,
            duration,
            stable_seed(
                placement.name,
                topology.label,
                duration,
                self.seed,
                placement.canonical_salt_for(topology),
            ),
        )
        return Measurement(
            workload_name=placement.name,
            config=topology,
            duration=duration,
            thread_counters=tuple(thread_counters),
            mean_power=summary.mean_power,
            power_std=summary.power_std,
            sample_count=summary.sample_count,
            thread_workloads=placement.thread_names,
        )

    def _cluster_core_activities(
        self, group: Sequence[Kernel | Workload], cluster: CoreCluster
    ) -> list[ThreadActivity]:
        """Per-slot activities of one core of a cluster placement.

        The cluster analogue of :meth:`_core_activities`: homogeneous
        cores take the cached single-workload path, mixed kernel cores
        go through the *cluster pipeline's* contention solver (memoized
        per core class), and profiled mixes fall back to per-workload
        activities -- all re-clocked to the cluster's operating point.
        """
        _, pipeline, _, view = self._parts(cluster.core_class)
        class_key = self._class_key(cluster.core_class)
        freq_scale = cluster.p_state.freq_scale
        strict_keys = {
            strict_workload_key(workload) for workload in group
        }
        if len(strict_keys) == 1:
            activity = self._resolve_activity_on(
                group[0], cluster.smt, class_key, pipeline, view
            ).at_frequency_scale(freq_scale)
            return [activity] * cluster.smt
        if all(isinstance(workload, Kernel) for workload in group):
            order = sorted(
                range(len(group)),
                key=lambda slot: workload_key(group[slot]),
            )
            cache_key = (
                class_key,
                tuple(workload_key(group[slot]) for slot in order),
                cluster.smt,
            )
            solved = self._mixed_cache.get(cache_key)
            if solved is None:
                summaries = [
                    pipeline.summarize(group[slot]) for slot in order
                ]
                solved = pipeline.mixed_core_activities(
                    summaries, cluster.smt
                )
                self._mixed_cache.put(cache_key, solved)
            activities: list[ThreadActivity | None] = [None] * len(group)
            for slot, activity in zip(order, solved):
                activities[slot] = activity.at_frequency_scale(freq_scale)
            return activities
        return [
            self._resolve_activity_on(
                workload, cluster.smt, class_key, pipeline, view
            ).at_frequency_scale(freq_scale)
            for workload in group
        ]
