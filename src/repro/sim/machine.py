"""The Machine facade: run a workload, get a Measurement back.

``Machine.run`` is the substitute for "deploy one copy per hardware
thread, pin the copies, run for 10 seconds, read TPMD power sensors
and PCL performance counters".  Workloads are either
:class:`~repro.sim.kernel.Kernel` objects (generated micro-benchmarks)
or any object implementing the small workload protocol used by the
SPEC proxies::

    workload.name                              -> str
    workload.thread_activity(machine, smt)     -> ThreadActivity

``Machine.run_many`` is the batched entry point the measurement
campaigns use: it amortizes per-kernel steady-state analysis across
the whole batch through the evaluation engine's summary-digest
memoization, so re-measuring one kernel across the 24-configuration
CMP/SMT sweep (or a GA population re-visiting genotypes) never
re-walks a loop body.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Protocol, runtime_checkable

from repro.errors import MeasurementError
from repro.march.definition import MicroArchitecture, get_architecture
from repro.measure.measurement import DEFAULT_DURATION_S, Measurement
from repro.sim.activity import ThreadActivity
from repro.sim.config import MachineConfig
from repro.sim.kernel import Kernel
from repro.sim.pipeline import CorePipelineModel
from repro.sim.power import GroundTruthPowerModel
from repro.sim.sensors import PowerSensor, stable_seed

#: Activity vectors retained per machine (FIFO eviction past this);
#: one-shot sweeps over huge design spaces never revisit a kernel.
ACTIVITY_CACHE_LIMIT = 65_536


@runtime_checkable
class Workload(Protocol):
    """Anything the machine can deploy across its hardware threads."""

    name: str

    def thread_activity(
        self, machine: "Machine", smt: int
    ) -> ThreadActivity:  # pragma: no cover - protocol signature
        ...


class Machine:
    """A POWER7-like CMP/SMT machine with sensors and counters."""

    def __init__(
        self, arch: MicroArchitecture | None = None, seed: int = 0
    ) -> None:
        self.arch = arch if arch is not None else get_architecture("POWER7")
        self.pipeline = CorePipelineModel(self.arch)
        self.seed = seed
        self._power = GroundTruthPowerModel(self.arch)
        self._sensor = PowerSensor()
        # Keyed on the kernel's analytic digest: kernels with identical
        # loop-body content share one steady-state analysis regardless
        # of how many Kernel objects carry it; distinct kernels that
        # happen to share a name never alias.
        self._activity_cache: dict[tuple[int, int], ThreadActivity] = {}

    @property
    def frequency(self) -> float:
        """Clock frequency in cycles per second."""
        return self.arch.chip.cycles_per_second

    # -- running workloads ---------------------------------------------------

    def run(
        self,
        workload: Kernel | Workload,
        config: MachineConfig,
        duration: float = DEFAULT_DURATION_S,
    ) -> Measurement:
        """Deploy one copy of ``workload`` per hardware thread and measure.

        Raises:
            MeasurementError: If the configuration does not fit the chip
                or the workload does not follow the protocol.
        """
        self._validate(config)
        return self._measure(workload, config, duration)

    def run_many(
        self,
        workloads: Iterable[Kernel | Workload] | Sequence[Kernel | Workload],
        config: MachineConfig,
        duration: float = DEFAULT_DURATION_S,
    ) -> list[Measurement]:
        """Measure a batch of workloads on one configuration.

        Semantically identical to ``[run(w, config, duration) for w in
        workloads]`` -- same measurements, same sensor noise draws --
        but validates the configuration once and drives every workload
        through the shared summary/activity memoization, which is the
        fast path for design-space exploration and training-suite
        campaigns.

        Raises:
            MeasurementError: If the configuration does not fit the chip
                or some workload does not follow the protocol.
        """
        self._validate(config)
        return [
            self._measure(workload, config, duration)
            for workload in workloads
        ]

    def run_idle(
        self,
        config: MachineConfig | None = None,
        duration: float = DEFAULT_DURATION_S,
    ) -> Measurement:
        """Measure the machine with no workload (workload-independent power)."""
        config = config or MachineConfig(cores=1, smt=1)
        zero_counters = {name: 0.0 for name in self.arch.counters}
        summary = self._sensor.measure(
            self._power.idle_power(),
            duration,
            stable_seed("<idle>", config.label, duration, self.seed),
        )
        return Measurement(
            workload_name="<idle>",
            config=config,
            duration=duration,
            thread_counters=tuple([zero_counters] * config.threads),
            mean_power=summary.mean_power,
            power_std=summary.power_std,
            sample_count=summary.sample_count,
        )

    # -- internals -------------------------------------------------------------

    def _validate(self, config: MachineConfig) -> None:
        try:
            config.validate_against(self.arch.chip)
        except ValueError as exc:
            raise MeasurementError(str(exc)) from None

    def _measure(
        self,
        workload: Kernel | Workload,
        config: MachineConfig,
        duration: float,
    ) -> Measurement:
        activity = self._resolve_activity(workload, config.smt)
        counters = self.pipeline.counters_from_activity(activity, duration)
        true_power = self._power.chip_power(
            [activity] * config.threads, config
        )
        salt = workload.digest() if isinstance(workload, Kernel) else 0
        summary = self._sensor.measure(
            true_power,
            duration,
            stable_seed(workload.name, config.label, duration, self.seed, salt),
        )
        return Measurement(
            workload_name=workload.name,
            config=config,
            duration=duration,
            thread_counters=tuple([counters] * config.threads),
            mean_power=summary.mean_power,
            power_std=summary.power_std,
            sample_count=summary.sample_count,
        )

    def _resolve_activity(
        self, workload: Kernel | Workload, smt: int
    ) -> ThreadActivity:
        if isinstance(workload, Kernel):
            key = (workload.digest(), smt)
            cached = self._activity_cache.get(key)
            if cached is None:
                cached = self.pipeline.activity(workload, smt)
                if len(self._activity_cache) >= ACTIVITY_CACHE_LIMIT:
                    self._activity_cache.pop(next(iter(self._activity_cache)))
                self._activity_cache[key] = cached
            return cached
        if isinstance(workload, Workload):
            return workload.thread_activity(self, smt)
        raise MeasurementError(
            f"cannot deploy {type(workload).__name__}: not a Kernel and "
            "does not implement the workload protocol"
        )
