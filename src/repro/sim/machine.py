"""The Machine facade: run a workload, get a Measurement back.

``Machine.run`` is the substitute for "deploy one copy per hardware
thread, pin the copies, run for 10 seconds, read TPMD power sensors
and PCL performance counters".  Workloads are either
:class:`~repro.sim.kernel.Kernel` objects (generated micro-benchmarks)
or any object implementing the small workload protocol used by the
SPEC proxies::

    workload.name                              -> str
    workload.thread_activity(machine, smt)     -> ThreadActivity

``Machine.run_many`` / ``Machine.run_cells`` / ``Machine.run_plan``
are the batched entry points the measurement campaigns use: they
amortize per-kernel steady-state analysis across the whole batch
through the evaluation engine's summary-digest memoization, and they
route kernel batches through the vectorized measurement plane
(:mod:`repro.sim.vector`), which evaluates whole plans as dense NumPy
tensor passes -- bit-identical to the scalar walk, which remains in
place as the reference implementation (``REPRO_VECTOR=0`` forces it).
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Sequence
from typing import Protocol, runtime_checkable

from repro.caching import LRUCache
from repro.errors import MeasurementError
from repro.march.definition import MicroArchitecture, get_architecture
from repro.measure.measurement import DEFAULT_DURATION_S, Measurement
from repro.sim.activity import ThreadActivity
from repro.sim.config import MachineConfig
from repro.sim.kernel import Kernel
from repro.sim.placement import Placement, strict_workload_key, workload_key
from repro.sim.pipeline import CorePipelineModel
from repro.sim.power import GroundTruthPowerModel
from repro.sim.sensors import PowerSensor, stable_seed
from repro.sim.vector import VectorPlane

#: Activity vectors retained per machine (LRU eviction past this);
#: one-shot sweeps over huge design spaces never revisit a kernel.
ACTIVITY_CACHE_LIMIT = 65_536


def _vector_enabled_by_default() -> bool:
    """``REPRO_VECTOR=0`` opts out of the tensor plane (debug knob)."""
    return os.environ.get("REPRO_VECTOR", "1") != "0"


@runtime_checkable
class Workload(Protocol):
    """Anything the machine can deploy across its hardware threads."""

    name: str

    def thread_activity(
        self, machine: "Machine", smt: int
    ) -> ThreadActivity:  # pragma: no cover - protocol signature
        ...


class Machine:
    """A POWER7-like CMP/SMT machine with sensors and counters."""

    def __init__(
        self,
        arch: MicroArchitecture | None = None,
        seed: int = 0,
        vector: bool | None = None,
    ) -> None:
        self.arch = arch if arch is not None else get_architecture("POWER7")
        self.pipeline = CorePipelineModel(self.arch)
        self.seed = seed
        self._power = GroundTruthPowerModel(self.arch)
        self._sensor = PowerSensor()
        # Keyed on the kernel's analytic digest: kernels with identical
        # loop-body content share one steady-state analysis regardless
        # of how many Kernel objects carry it; distinct kernels that
        # happen to share a name never alias.
        self._activity_cache: LRUCache[
            tuple[int, int], ThreadActivity
        ] = LRUCache(ACTIVITY_CACHE_LIMIT, "machine.activity")
        # Mixed-core contention solves, keyed on the canonical workload
        # keys of the co-runners plus the SMT way: a placement sweep
        # re-deploying the same mix across cores, configurations and
        # p-states runs the bisection once (solutions are stored at
        # nominal frequency; the p-state re-clock applies on top).
        self._mixed_cache: LRUCache[tuple, list[ThreadActivity]] = LRUCache(
            ACTIVITY_CACHE_LIMIT, "machine.mixed_core"
        )
        # The vectorized measurement plane (sim/vector.py): kernel
        # batches evaluate as dense tensor ops, bit-identical to the
        # scalar walk.  ``vector=False`` (or REPRO_VECTOR=0) keeps
        # every measurement on the scalar reference path.
        if vector is None:
            vector = _vector_enabled_by_default()
        self._vector = VectorPlane(self) if vector else None

    @property
    def frequency(self) -> float:
        """Clock frequency in cycles per second."""
        return self.arch.chip.cycles_per_second

    @property
    def vector_enabled(self) -> bool:
        """Whether batches route through the vectorized plane."""
        return self._vector is not None

    # -- running workloads ---------------------------------------------------

    def run(
        self,
        workload: Kernel | Workload | Placement,
        config: MachineConfig,
        duration: float = DEFAULT_DURATION_S,
    ) -> Measurement:
        """Deploy ``workload`` and measure one window.

        A plain workload is replicated once per hardware thread (the
        paper's deployment); a :class:`~repro.sim.placement.Placement`
        assigns its explicit per-thread workloads instead.  The
        configuration's p-state re-clocks the run and scales dynamic
        power by ``V^2 f``.

        Raises:
            MeasurementError: If the configuration does not fit the
                chip, the placement does not fit the configuration, or
                the workload does not follow the protocol.
        """
        self._validate(config)
        return self._measure(workload, config, duration)

    def run_many(
        self,
        workloads: Iterable[Kernel | Workload | Placement],
        config: MachineConfig,
        duration: float = DEFAULT_DURATION_S,
    ) -> list[Measurement]:
        """Measure a batch of workloads or placements on one configuration.

        Semantically identical to ``[run(w, config, duration) for w in
        workloads]`` -- same measurements, same sensor noise draws --
        but validates the configuration once and drives every workload
        through the shared summary/activity memoization, which is the
        fast path for design-space exploration and training-suite
        campaigns.  Placements batch the same way: every distinct
        kernel appearing in the batch is summarized once regardless of
        how many placements (or threads) carry it.

        Raises:
            MeasurementError: If the configuration does not fit the chip
                or some workload does not follow the protocol.
        """
        self._validate(config)
        workloads = list(workloads)
        if self._vector is not None:
            batched = self._vector.try_measure_cells(
                [(workload, config, duration) for workload in workloads]
            )
            if batched is not None:
                return batched
        return [
            self._measure(workload, config, duration)
            for workload in workloads
        ]

    def run_cells(self, cells) -> list[Measurement]:
        """Measure a heterogeneous batch of plan cells in one pass.

        ``cells`` is any sequence of objects with ``workload``,
        ``config`` and ``duration`` attributes (e.g.
        :class:`~repro.exec.plan.PlanCell`).  Unlike :meth:`run_many`,
        the batch may span many configurations and windows: the
        vectorized measurement plane evaluates every kernel cell of
        the whole batch as *one* tensor pass, which is what lets a
        full 24-configuration sweep amortize its per-batch setup (and
        its sensor seeding) across all cells.  Results are returned in
        cell order, bit-identical to per-cell :meth:`run` calls.

        Raises:
            MeasurementError: If some configuration does not fit the
                chip or some workload does not follow the protocol.
        """
        triples = [
            (cell.workload, cell.config, cell.duration) for cell in cells
        ]
        # Deduplicate by object identity: plans reuse config objects
        # across cells, and hashing a MachineConfig per cell is more
        # expensive than the validation itself.
        distinct = {id(triple[1]): triple[1] for triple in triples}
        for config in distinct.values():
            self._validate(config)
        if self._vector is not None:
            batched = self._vector.try_measure_cells(triples)
            if batched is not None:
                return batched
        return [
            self._measure(workload, config, duration)
            for workload, config, duration in triples
        ]

    def run_plan(self, plan) -> list[Measurement]:
        """Execute a whole :class:`~repro.exec.plan.ExperimentPlan`.

        The plan's unique cells evaluate through :meth:`run_cells`
        (one tensor pass across every configuration), and results fan
        back out to the plan's requested order.  This is the
        in-process fast path; executors add stores and worker sharding
        on top.
        """
        return plan.expand(self.run_cells(plan.cells))

    def cache_stats(self) -> dict:
        """Hit/miss/size counters of every memo cache in the substrate.

        Covers the machine's activity and mixed-core solve caches, the
        pipeline's kernel-digest summary cache, and (when the vector
        plane is enabled) its packed-kernel and stacked-batch caches.
        All of them are size-capped LRUs, so week-long campaigns hold
        memory flat; these counters show whether they are earning
        their keep.
        """
        stats = {
            "activity": self._activity_cache.stats(),
            "mixed_core": self._mixed_cache.stats(),
            "summaries": self.pipeline.cache_stats(),
        }
        if self._vector is not None:
            stats.update(self._vector.cache_stats())
        return stats

    def run_idle(
        self,
        config: MachineConfig | None = None,
        duration: float = DEFAULT_DURATION_S,
    ) -> Measurement:
        """Measure the machine with no workload (workload-independent power)."""
        config = config or MachineConfig(cores=1, smt=1)
        zero_counters = {name: 0.0 for name in self.arch.counters}
        summary = self._sensor.measure(
            self._power.idle_power(),
            duration,
            stable_seed("<idle>", config.label, duration, self.seed),
        )
        return Measurement(
            workload_name="<idle>",
            config=config,
            duration=duration,
            thread_counters=tuple([zero_counters] * config.threads),
            mean_power=summary.mean_power,
            power_std=summary.power_std,
            sample_count=summary.sample_count,
        )

    # -- internals -------------------------------------------------------------

    def _validate(self, config: MachineConfig) -> None:
        try:
            config.validate_against(self.arch.chip)
        except ValueError as exc:
            raise MeasurementError(str(exc)) from None

    def _measure(
        self,
        workload: Kernel | Workload | Placement,
        config: MachineConfig,
        duration: float,
    ) -> Measurement:
        if isinstance(workload, Placement):
            return self._measure_placement(workload, config, duration)
        activity = self._run_activity(workload, config)
        counters = self.pipeline.counters_from_activity(
            activity, duration, frequency=self._run_frequency(config)
        )
        true_power = self._power.chip_power(
            [activity] * config.threads, config
        )
        salt = workload.digest() if isinstance(workload, Kernel) else 0
        summary = self._sensor.measure(
            true_power,
            duration,
            stable_seed(workload.name, config.label, duration, self.seed, salt),
        )
        return Measurement(
            workload_name=workload.name,
            config=config,
            duration=duration,
            thread_counters=tuple([counters] * config.threads),
            mean_power=summary.mean_power,
            power_std=summary.power_std,
            sample_count=summary.sample_count,
        )

    def _measure_placement(
        self,
        placement: Placement,
        config: MachineConfig,
        duration: float,
    ) -> Measurement:
        """Measure an explicit per-thread workload assignment.

        Per-thread counters keep the placement's declaration order;
        chip power and the sensor noise salt are evaluated over the
        placement's canonical ordering, so permuting co-runners within
        a core (or whole cores) reproduces the measurement exactly.
        The homogeneous placement takes the same arithmetic path as
        ``run`` -- same activity objects, same power sum, same noise
        seed -- and is therefore bit-identical to it.
        """
        try:
            placement.validate_against(config)
        except ValueError as exc:
            raise MeasurementError(str(exc)) from None
        # Cores carrying the same group (every round-robin mix) share
        # one activity resolution, so their counter dicts alias too.
        group_memo: dict[tuple, list[ThreadActivity]] = {}
        core_activities = []
        for group in placement.core_groups:
            group_key = tuple(
                strict_workload_key(workload) for workload in group
            )
            activities = group_memo.get(group_key)
            if activities is None:
                activities = self._core_activities(group, config)
                group_memo[group_key] = activities
            core_activities.append(activities)
        frequency = self._run_frequency(config)
        # One counter synthesis per distinct activity object: threads
        # sharing an activity (homogeneous cores, repeated mixes) share
        # the counter dict, exactly as the plain path replicates one.
        counter_memo: dict[int, dict[str, float]] = {}

        def counters_for(activity: ThreadActivity) -> dict[str, float]:
            found = counter_memo.get(id(activity))
            if found is None:
                found = self.pipeline.counters_from_activity(
                    activity, duration, frequency=frequency
                )
                counter_memo[id(activity)] = found
            return found

        counters = tuple(
            counters_for(activity)
            for activities in core_activities
            for activity in activities
        )
        true_power = self._power.chip_power(
            [
                core_activities[core][slot]
                for core, slot in placement.canonical_order()
            ],
            config,
        )
        summary = self._sensor.measure(
            true_power,
            duration,
            stable_seed(
                placement.name,
                config.label,
                duration,
                self.seed,
                placement.canonical_salt(),
            ),
        )
        return Measurement(
            workload_name=placement.name,
            config=config,
            duration=duration,
            thread_counters=counters,
            mean_power=summary.mean_power,
            power_std=summary.power_std,
            sample_count=summary.sample_count,
            thread_workloads=placement.thread_names,
        )

    def _run_frequency(self, config: MachineConfig) -> float:
        """Effective clock under the configuration's p-state."""
        return self.frequency * config.p_state.freq_scale

    def _run_activity(
        self, workload: Kernel | Workload, config: MachineConfig
    ) -> ThreadActivity:
        """Steady-state activity re-clocked to the config's p-state."""
        activity = self._resolve_activity(workload, config.smt)
        return activity.at_frequency_scale(config.p_state.freq_scale)

    def _core_activities(
        self, group: Sequence[Kernel | Workload], config: MachineConfig
    ) -> list[ThreadActivity]:
        """Per-slot activities of one core of a placement.

        A homogeneous core degenerates to the cached single-workload
        path; a core mixing distinct kernels goes through the
        pipeline's mixed-core contention solver.  Cores mixing
        profiled workloads (whose SMT behaviour is a published scaling
        curve, not an occupancy model) fall back to each workload's
        own SMT-way activity.
        """
        strict_keys = {
            strict_workload_key(workload) for workload in group
        }
        freq_scale = config.p_state.freq_scale
        if len(strict_keys) == 1:
            activity = self._run_activity(group[0], config)
            return [activity] * config.smt
        if all(isinstance(workload, Kernel) for workload in group):
            # Solve in canonical (workload-identity) order: the
            # solver's accumulation order then never depends on which
            # SMT slot a co-runner was declared in, so permuting
            # co-runners permutes the resulting activities *exactly*
            # (same floats), keeping chip power and noise draws
            # permutation-invariant to the last bit.
            order = sorted(
                range(len(group)),
                key=lambda slot: workload_key(group[slot]),
            )
            cache_key = (
                tuple(workload_key(group[slot]) for slot in order),
                config.smt,
            )
            solved = self._mixed_cache.get(cache_key)
            if solved is None:
                summaries = [
                    self.pipeline.summarize(group[slot]) for slot in order
                ]
                solved = self.pipeline.mixed_core_activities(
                    summaries, config.smt
                )
                self._mixed_cache.put(cache_key, solved)
            activities: list[ThreadActivity | None] = [None] * len(group)
            for slot, activity in zip(order, solved):
                activities[slot] = activity.at_frequency_scale(freq_scale)
            return activities
        return [
            self._run_activity(workload, config) for workload in group
        ]

    def _resolve_activity(
        self, workload: Kernel | Workload, smt: int
    ) -> ThreadActivity:
        if isinstance(workload, Kernel):
            key = (workload.digest(), smt)
            cached = self._activity_cache.get(key)
            if cached is None:
                cached = self.pipeline.activity(workload, smt)
                self._activity_cache.put(key, cached)
            return cached
        if isinstance(workload, Workload):
            return workload.thread_activity(self, smt)
        raise MeasurementError(
            f"cannot deploy {type(workload).__name__}: not a Kernel and "
            "does not implement the workload protocol"
        )
