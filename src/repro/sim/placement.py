"""Placements: per-hardware-thread workload assignment.

The paper's methodology deploys *one* workload replicated across every
hardware thread of a configuration.  A :class:`Placement` generalizes
that to heterogeneous co-scheduling: each enabled core carries an
explicit tuple of workloads, one per SMT slot, so dissimilar kernels
can share a core's SMT resources (hi-ILP next to memory-bound, vector
next to scalar, antagonist pairs -- see :mod:`repro.workloads.mixes`).

The homogeneous placement is the exact degenerate case: deploying one
workload everywhere reproduces ``Machine.run(workload, config)`` bit
for bit -- same counters, same noise draws -- so existing callers and
cached digests are unchanged.

Within a core, SMT contention among dissimilar kernels is resolved by
the pipeline model's mixed-core solver
(:meth:`~repro.sim.pipeline.CorePipelineModel.mixed_core_activities`).
Physically, which SMT slot of a core a thread occupies is irrelevant --
chip power and aggregate behaviour are invariant under permuting
co-runners within a core (and under permuting whole cores).  The
machine guarantees this *exactly* by evaluating power and noise seeds
over the :meth:`canonical ordering <Placement.canonical_order>` of the
placement rather than its declaration order, while per-thread counter
readings keep the declaration order.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.kernel import Kernel
from repro.sim.sensors import stable_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.config import MachineConfig


def workload_key(workload: object) -> tuple:
    """Deterministic, sortable identity of one placed workload.

    Kernels are identified by name plus analytic digest (two kernels
    sharing a name never alias); protocol workloads by kind and name.
    The key is stable across processes, so canonical orderings and the
    noise salts derived from them reproduce bit-for-bit.
    """
    if isinstance(workload, Kernel):
        return ("kernel", workload.name, workload.digest())
    return ("workload", getattr(workload, "name", type(workload).__name__), 0)


def strict_workload_key(workload: object) -> tuple:
    """Aliasing-proof identity, for homogeneity decisions.

    :func:`workload_key` identifies protocol workloads by name because
    noise salts must be process-stable; but two *distinct* workload
    objects sharing a name must never be treated as one copy of the
    same work.  Homogeneity checks therefore use kernel content
    digests (value identity -- equal-content kernels genuinely are the
    same work) and plain object identity for everything else.
    """
    if isinstance(workload, Kernel):
        return ("kernel", workload.digest())
    return ("object", id(workload))


@dataclass(frozen=True)
class Placement:
    """One workload per hardware thread, grouped by core.

    Attributes:
        name: Identifier used in measurements and noise seeding.
        core_groups: Per enabled core, the workloads occupying its SMT
            slots (every core must carry the same slot count -- the SMT
            mode is a chip-wide switch).
    """

    name: str
    core_groups: tuple[tuple[object, ...], ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("placement needs a name")
        if not self.core_groups:
            raise ValueError(f"placement {self.name!r} has no cores")
        width = len(self.core_groups[0])
        if width < 1:
            raise ValueError(f"placement {self.name!r} has an empty core")
        for index, group in enumerate(self.core_groups):
            if len(group) != width:
                raise ValueError(
                    f"placement {self.name!r}: core {index} carries "
                    f"{len(group)} workloads, core 0 carries {width}; "
                    "the SMT mode is chip-wide"
                )

    # -- shape -----------------------------------------------------------------

    @property
    def cores(self) -> int:
        """Enabled cores."""
        return len(self.core_groups)

    @property
    def smt(self) -> int:
        """SMT slots per core."""
        return len(self.core_groups[0])

    @property
    def threads(self) -> int:
        """Total hardware threads occupied."""
        return self.cores * self.smt

    @property
    def thread_workloads(self) -> tuple[object, ...]:
        """All placed workloads, core-major declaration order."""
        return tuple(
            workload for group in self.core_groups for workload in group
        )

    @property
    def thread_names(self) -> tuple[str, ...]:
        """Per-thread workload names, core-major declaration order."""
        return tuple(
            getattr(workload, "name", type(workload).__name__)
            for workload in self.thread_workloads
        )

    @property
    def is_homogeneous(self) -> bool:
        """Whether every thread runs the same workload."""
        keys = {
            strict_workload_key(workload)
            for workload in self.thread_workloads
        }
        return len(keys) == 1

    def validate_against(self, config: "MachineConfig") -> None:
        """Raise ``ValueError`` if the placement does not fit ``config``."""
        if self.cores != config.cores or self.smt != config.smt:
            raise ValueError(
                f"placement {self.name!r} is {self.cores} cores x "
                f"SMT-{self.smt}, configuration {config.label} needs "
                f"{config.cores} x SMT-{config.smt}"
            )

    # -- canonical identity -------------------------------------------------------

    def canonical_order(self) -> list[tuple[int, int]]:
        """``(core, slot)`` pairs in the placement's canonical order.

        Slots sort by workload identity within each core, and cores
        sort by their sorted identity tuples.  Any two placements that
        are within-core (or whole-core) permutations of each other
        share one canonical order, which is what makes chip power and
        noise draws exactly permutation-invariant.
        """
        per_core = [
            sorted(
                range(len(group)),
                key=lambda slot: workload_key(group[slot]),
            )
            for group in self.core_groups
        ]
        core_order = sorted(
            range(self.cores),
            key=lambda core: tuple(
                workload_key(self.core_groups[core][slot])
                for slot in per_core[core]
            ),
        )
        return [
            (core, slot) for core in core_order for slot in per_core[core]
        ]

    def canonical_salt(self) -> int:
        """Noise-seed salt, invariant under co-runner permutation.

        The homogeneous case returns the single kernel's digest (zero
        for protocol workloads), matching the salt ``Machine.run``
        uses -- a homogeneous placement therefore draws the exact same
        sensor noise as the plain run it degenerates to.
        """
        workloads = self.thread_workloads
        if self.is_homogeneous:
            first = workloads[0]
            return first.digest() if isinstance(first, Kernel) else 0
        parts = [
            workload_key(self.core_groups[core][slot])
            for core, slot in self.canonical_order()
        ]
        return stable_seed(*parts)

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able form, round-tripped by :meth:`from_dict`.

        Only kernel placements serialize: generated kernels carry their
        full content, while protocol workloads (SPEC proxies) are
        opaque adapter objects a JSON file cannot reconstruct.

        Raises:
            TypeError: If some placed workload is not a
                :class:`~repro.sim.kernel.Kernel`.
        """
        for workload in self.thread_workloads:
            if not isinstance(workload, Kernel):
                raise TypeError(
                    f"placement {self.name!r} places "
                    f"{type(workload).__name__!r}; only kernel "
                    "placements serialize"
                )
        return {
            "name": self.name,
            "core_groups": [
                [workload.to_dict() for workload in group]
                for group in self.core_groups
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Placement":
        """Rebuild a placement serialized by :meth:`to_dict`."""
        return cls(
            name=data["name"],
            core_groups=tuple(
                tuple(Kernel.from_dict(workload) for workload in group)
                for group in data["core_groups"]
            ),
        )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def homogeneous(
        cls,
        workload: object,
        config: "MachineConfig",
        name: str | None = None,
    ) -> "Placement":
        """One copy of ``workload`` per hardware thread (the paper's
        deployment), named after the workload so measurements and noise
        draws match ``Machine.run`` exactly."""
        if name is None:
            name = getattr(workload, "name", type(workload).__name__)
        return cls(
            name=name,
            core_groups=tuple(
                (workload,) * config.smt for _ in range(config.cores)
            ),
        )

    @classmethod
    def round_robin(
        cls,
        workloads: Sequence[object],
        config: "MachineConfig",
        name: str,
    ) -> "Placement":
        """Cycle ``workloads`` across the configuration's threads,
        core-major -- every SMT-``n`` core co-schedules ``n``
        consecutive entries of the cycle."""
        if not workloads:
            raise ValueError("round_robin needs at least one workload")
        groups = []
        for core in range(config.cores):
            groups.append(
                tuple(
                    workloads[(core * config.smt + slot) % len(workloads)]
                    for slot in range(config.smt)
                )
            )
        return cls(name=name, core_groups=tuple(groups))
