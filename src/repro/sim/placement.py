"""Placements: per-hardware-thread workload assignment.

The paper's methodology deploys *one* workload replicated across every
hardware thread of a configuration.  A :class:`Placement` generalizes
that to heterogeneous co-scheduling: each enabled core carries an
explicit tuple of workloads, one per SMT slot, so dissimilar kernels
can share a core's SMT resources (hi-ILP next to memory-bound, vector
next to scalar, antagonist pairs -- see :mod:`repro.workloads.mixes`).

The homogeneous placement is the exact degenerate case: deploying one
workload everywhere reproduces ``Machine.run(workload, config)`` bit
for bit -- same counters, same noise draws -- so existing callers and
cached digests are unchanged.

Within a core, SMT contention among dissimilar kernels is resolved by
the pipeline model's mixed-core solver
(:meth:`~repro.sim.pipeline.CorePipelineModel.mixed_core_activities`).
Physically, which SMT slot of a core a thread occupies is irrelevant --
chip power and aggregate behaviour are invariant under permuting
co-runners within a core (and under permuting whole cores).  The
machine guarantees this *exactly* by evaluating power and noise seeds
over the :meth:`canonical ordering <Placement.canonical_order>` of the
placement rather than its declaration order, while per-thread counter
readings keep the declaration order.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.kernel import Kernel
from repro.sim.sensors import stable_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.config import MachineConfig


def workload_key(workload: object) -> tuple:
    """Deterministic, sortable identity of one placed workload.

    Kernels are identified by name plus analytic digest (two kernels
    sharing a name never alias); protocol workloads by kind and name.
    The key is stable across processes, so canonical orderings and the
    noise salts derived from them reproduce bit-for-bit.
    """
    if isinstance(workload, Kernel):
        return ("kernel", workload.name, workload.digest())
    return ("workload", getattr(workload, "name", type(workload).__name__), 0)


def strict_workload_key(workload: object) -> tuple:
    """Aliasing-proof identity, for homogeneity decisions.

    :func:`workload_key` identifies protocol workloads by name because
    noise salts must be process-stable; but two *distinct* workload
    objects sharing a name must never be treated as one copy of the
    same work.  Homogeneity checks therefore use kernel content
    digests (value identity -- equal-content kernels genuinely are the
    same work) and plain object identity for everything else.
    """
    if isinstance(workload, Kernel):
        return ("kernel", workload.digest())
    return ("object", id(workload))


@dataclass(frozen=True)
class Placement:
    """One workload per hardware thread, grouped by core.

    Attributes:
        name: Identifier used in measurements and noise seeding.
        core_groups: Per enabled core, the workloads occupying its SMT
            slots (every core must carry the same slot count -- the SMT
            mode is a chip-wide switch).
    """

    name: str
    core_groups: tuple[tuple[object, ...], ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("placement needs a name")
        if not self.core_groups:
            raise ValueError(f"placement {self.name!r} has no cores")
        for index, group in enumerate(self.core_groups):
            if len(group) < 1:
                raise ValueError(
                    f"placement {self.name!r}: core {index} is empty"
                )

    # -- shape -----------------------------------------------------------------

    @property
    def cores(self) -> int:
        """Enabled cores."""
        return len(self.core_groups)

    @property
    def is_uniform(self) -> bool:
        """Whether every core carries the same SMT slot count.

        Homogeneous-chip placements are always uniform (the SMT mode
        is a chip-wide switch); placements laid out for a
        :class:`~repro.sim.topology.ChipTopology` may be ragged, one
        width per cluster.
        """
        width = len(self.core_groups[0])
        return all(len(group) == width for group in self.core_groups)

    @property
    def smt(self) -> int:
        """SMT slots per core (uniform placements)."""
        return len(self.core_groups[0])

    @property
    def threads(self) -> int:
        """Total hardware threads occupied."""
        return self.cores * self.smt

    @property
    def thread_workloads(self) -> tuple[object, ...]:
        """All placed workloads, core-major declaration order."""
        return tuple(
            workload for group in self.core_groups for workload in group
        )

    @property
    def thread_names(self) -> tuple[str, ...]:
        """Per-thread workload names, core-major declaration order."""
        return tuple(
            getattr(workload, "name", type(workload).__name__)
            for workload in self.thread_workloads
        )

    @property
    def is_homogeneous(self) -> bool:
        """Whether every thread runs the same workload."""
        keys = {
            strict_workload_key(workload)
            for workload in self.thread_workloads
        }
        return len(keys) == 1

    def validate_against(self, config) -> None:
        """Raise ``ValueError`` if the placement does not fit ``config``.

        ``config`` is either a :class:`~repro.sim.config.MachineConfig`
        (uniform core groups, chip-wide SMT) or a
        :class:`~repro.sim.topology.ChipTopology` (cluster-major core
        groups, each as wide as its cluster's SMT way).
        """
        clusters = getattr(config, "clusters", None)
        if clusters is not None:
            if self.cores != config.cores:
                raise ValueError(
                    f"placement {self.name!r} has {self.cores} cores, "
                    f"topology {config.label} enables {config.cores}"
                )
            core = 0
            for cluster in clusters:
                for _ in range(cluster.cores):
                    width = len(self.core_groups[core])
                    if width != cluster.smt:
                        raise ValueError(
                            f"placement {self.name!r}: core {core} "
                            f"carries {width} workloads, cluster "
                            f"{cluster.label!r} of {config.label} runs "
                            f"SMT-{cluster.smt}"
                        )
                    core += 1
            return
        if not self.is_uniform:
            raise ValueError(
                f"placement {self.name!r} has ragged core groups; "
                f"configuration {config.label}'s SMT mode is chip-wide"
            )
        if self.cores != config.cores or self.smt != config.smt:
            raise ValueError(
                f"placement {self.name!r} is {self.cores} cores x "
                f"SMT-{self.smt}, configuration {config.label} needs "
                f"{config.cores} x SMT-{config.smt}"
            )

    # -- canonical identity -------------------------------------------------------

    def segment_order(self, start: int, stop: int) -> list[tuple[int, int]]:
        """Canonical ``(core, slot)`` order of cores ``[start, stop)``.

        Slots sort by workload identity within each core, and the
        segment's cores sort by their sorted identity tuples.  On a
        heterogeneous topology each cluster is one segment: cores are
        interchangeable *within* a cluster (identical silicon) but not
        across clusters, so power and noise salts canonicalize per
        segment.
        """
        per_core = {
            core: sorted(
                range(len(self.core_groups[core])),
                key=lambda slot: workload_key(self.core_groups[core][slot]),
            )
            for core in range(start, stop)
        }
        core_order = sorted(
            range(start, stop),
            key=lambda core: tuple(
                workload_key(self.core_groups[core][slot])
                for slot in per_core[core]
            ),
        )
        return [
            (core, slot) for core in core_order for slot in per_core[core]
        ]

    def canonical_order(self) -> list[tuple[int, int]]:
        """``(core, slot)`` pairs in the placement's canonical order.

        Slots sort by workload identity within each core, and cores
        sort by their sorted identity tuples.  Any two placements that
        are within-core (or whole-core) permutations of each other
        share one canonical order, which is what makes chip power and
        noise draws exactly permutation-invariant.
        """
        return self.segment_order(0, self.cores)

    def canonical_salt(self) -> int:
        """Noise-seed salt, invariant under co-runner permutation.

        The homogeneous case returns the single kernel's digest (zero
        for protocol workloads), matching the salt ``Machine.run``
        uses -- a homogeneous placement therefore draws the exact same
        sensor noise as the plain run it degenerates to.
        """
        workloads = self.thread_workloads
        if self.is_homogeneous:
            first = workloads[0]
            return first.digest() if isinstance(first, Kernel) else 0
        parts = [
            workload_key(self.core_groups[core][slot])
            for core, slot in self.canonical_order()
        ]
        return stable_seed(*parts)

    def canonical_salt_for(self, topology) -> int:
        """Noise salt on a heterogeneous topology, segment-canonical.

        Invariant under co-runner permutation within a core and core
        permutation within a cluster, but *not* across clusters --
        moving work from big to little cores is a different physical
        run.  The homogeneous case returns the plain-run salt, so a
        homogeneous placement on a topology draws the exact noise of
        the corresponding ``Machine.run`` deployment.
        """
        if self.is_homogeneous:
            first = self.thread_workloads[0]
            return first.digest() if isinstance(first, Kernel) else 0
        parts: list[object] = []
        offset = 0
        for index, cluster in enumerate(topology.clusters):
            parts.append(("cluster", index))
            for core, slot in self.segment_order(
                offset, offset + cluster.cores
            ):
                parts.append(workload_key(self.core_groups[core][slot]))
            offset += cluster.cores
        return stable_seed(*parts)

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able form, round-tripped by :meth:`from_dict`.

        Only kernel placements serialize: generated kernels carry their
        full content, while protocol workloads (SPEC proxies) are
        opaque adapter objects a JSON file cannot reconstruct.

        Raises:
            TypeError: If some placed workload is not a
                :class:`~repro.sim.kernel.Kernel`.
        """
        for workload in self.thread_workloads:
            if not isinstance(workload, Kernel):
                raise TypeError(
                    f"placement {self.name!r} places "
                    f"{type(workload).__name__!r}; only kernel "
                    "placements serialize"
                )
        return {
            "name": self.name,
            "core_groups": [
                [workload.to_dict() for workload in group]
                for group in self.core_groups
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Placement":
        """Rebuild a placement serialized by :meth:`to_dict`."""
        return cls(
            name=data["name"],
            core_groups=tuple(
                tuple(Kernel.from_dict(workload) for workload in group)
                for group in data["core_groups"]
            ),
        )

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def _core_widths(config) -> list[int]:
        """Per-core SMT slot counts, cluster-major for topologies."""
        clusters = getattr(config, "clusters", None)
        if clusters is not None:
            return [
                cluster.smt
                for cluster in clusters
                for _ in range(cluster.cores)
            ]
        return [config.smt] * config.cores

    @classmethod
    def homogeneous(
        cls,
        workload: object,
        config,
        name: str | None = None,
    ) -> "Placement":
        """One copy of ``workload`` per hardware thread (the paper's
        deployment), named after the workload so measurements and noise
        draws match ``Machine.run`` exactly.  On a
        :class:`~repro.sim.topology.ChipTopology` the groups are
        cluster-major, each core as wide as its cluster's SMT way."""
        if name is None:
            name = getattr(workload, "name", type(workload).__name__)
        return cls(
            name=name,
            core_groups=tuple(
                (workload,) * width for width in cls._core_widths(config)
            ),
        )

    @classmethod
    def round_robin(
        cls,
        workloads: Sequence[object],
        config,
        name: str,
    ) -> "Placement":
        """Cycle ``workloads`` across the configuration's threads,
        core-major -- every SMT-``n`` core co-schedules ``n``
        consecutive entries of the cycle.  Topologies cycle
        cluster-major over their (possibly ragged) thread grid."""
        if not workloads:
            raise ValueError("round_robin needs at least one workload")
        groups = []
        position = 0
        for width in cls._core_widths(config):
            groups.append(
                tuple(
                    workloads[(position + slot) % len(workloads)]
                    for slot in range(width)
                )
            )
            position += width
        return cls(name=name, core_groups=tuple(groups))

    @classmethod
    def cluster_affinity(
        cls,
        per_cluster: Sequence[object],
        topology,
        name: str,
    ) -> "Placement":
        """One workload per *cluster*, replicated across its threads.

        The big.LITTLE affinity layout: ``per_cluster[i]`` runs on
        every hardware thread of ``topology.clusters[i]`` -- e.g. the
        compute-hungry kernel pinned to the big cluster while the
        memory-bound stream rides the little cores.
        """
        clusters = topology.clusters
        if len(per_cluster) != len(clusters):
            raise ValueError(
                f"cluster_affinity needs {len(clusters)} workloads "
                f"for {topology.label}, got {len(per_cluster)}"
            )
        groups = []
        for workload, cluster in zip(per_cluster, clusters):
            groups.extend(
                [(workload,) * cluster.smt] * cluster.cores
            )
        return cls(name=name, core_groups=tuple(groups))
