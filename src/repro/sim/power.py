"""Hidden ground-truth power model -- the "silicon" of the substrate.

.. warning::
   Modeling code (:mod:`repro.power_model`, :mod:`repro.epi`,
   :mod:`repro.stressmark`) must **never** import this module.  The
   fitted models of the paper only ever observe sensor readings and
   performance counters; importing the ground truth would make the
   reproduction circular.

The model is deliberately richer than anything the counter-based
models can express, so the paper's observed phenomena have mechanistic
origins here:

* per-*mnemonic* energies (Table 3's 78 % same-unit EPI spread),
* an operand-data toggle factor (the up-to-40 % zero-data EPI drop),
* an instruction-order switching factor (the 17 % same-mix,
  different-order power spread of Section 6), and
* a *concave* uncore-vs-cores curve (the linear CMP-effect fit of the
  bottom-up model then shows the rising-then-falling error trend of
  Figure 5b).

All absolute numbers are plausible-magnitude watts and nanojoules for
a 45 nm, 3 GHz, 8-core server chip; the experiments report normalized
values, as the paper does.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.march.definition import MicroArchitecture
from repro.sim.activity import ThreadActivity
from repro.sim.config import MachineConfig

# -- static components (watts) ------------------------------------------------

#: Workload-independent power: the chip sitting idle.
IDLE_POWER = 61.0
#: Constant uncore power once anything at all is running.
UNCORE_ACTIVE = 8.0
#: CMP effect, linear part (per enabled core).
CMP_LINEAR = 2.0
#: CMP effect, concave part: ``CMP_CONCAVE * cores ** CMP_EXPONENT``.
CMP_CONCAVE = 4.4
CMP_EXPONENT = 0.62
#: Extra control-logic power per core whose SMT facility is enabled.
#: Small by design: the paper found the SMT effect minimal (<3% of
#: total power in every configuration).
SMT_LOGIC = 0.45

# -- dynamic energy (nanojoules) -------------------------------------------------

#: Base energy per operation injected into each functional unit.
UNIT_ENERGY_NJ = {"FXU": 0.50, "LSU": 0.55, "VSU": 0.85, "BRU": 0.18, "CRU": 0.22}

#: Average per-unit energies of a *generic* instruction mix; used for
#: profiled workloads that only know unit-level rates.
PROFILE_UNIT_ENERGY_NJ = {
    "FXU": 0.62, "LSU": 0.72, "VSU": 1.02, "BRU": 0.20, "CRU": 0.22,
}

#: Energy per access sourced from each memory hierarchy level.
LEVEL_ENERGY_NJ = {"L1": 0.35, "L2": 1.8, "L3": 5.0, "MEM": 18.0}

#: Dispatch/commit floor energy for slots with no unit usage (nops).
#: Kept very small so the bootstrap's nop-reference subtraction stays
#: within sensor noise (see repro.march.bootstrap).
NOP_ENERGY_NJ = 0.012

#: Instruction-order switching power: multiplier spans
#: [ORDER_BASE, ORDER_BASE + ORDER_SPAN] as unit alternation goes 0 -> 1.
#: The span is what makes same-mix, different-order stressmarks differ
#: by double-digit percents (paper section 6).
ORDER_BASE = 0.90
ORDER_SPAN = 0.24

#: Operand-data toggling: multiplier spans [DATA_BASE, 1.0] as operand
#: entropy goes 0 (all zeros) -> 1 (random data).
DATA_BASE = 0.60
DATA_SPAN = 0.40

#: Per-mnemonic energy multipliers on top of the unit base energies.
#: Values were chosen so the *measured* (bootstrapped) EPI taxonomy
#: reproduces the relative orderings of the paper's Table 3.
#: Unlisted mnemonics default to 1.0.
ENERGY_MULTIPLIER = {
    # fixed-point: simple ops are cheap, multiplies/divides expensive
    "addic": 1.00, "subf": 1.69, "addc": 1.55, "subfc": 1.55,
    "adde": 1.60, "subfe": 1.60,
    "mulldo": 2.80, "mulld": 2.25, "mullw": 2.10, "mulhd": 2.20,
    "mulhw": 2.05, "mulli": 2.00,
    "divd": 3.50, "divw": 3.30, "divdu": 3.45,
    "sld": 1.15, "slw": 1.10, "srd": 1.15, "srw": 1.10,
    "srad": 1.25, "sraw": 1.20, "rlwinm": 1.30, "rldicl": 1.35,
    "cntlzw": 1.20, "cntlzd": 1.25, "popcntd": 1.45,
    # simple fixed-point (FXU or LSU): the 'add'/'nor'/'and' spread
    "add": 1.65, "nor": 1.50, "and": 1.10, "or": 1.20, "xor": 1.20,
    "nand": 1.45, "eqv": 1.40, "andc": 1.30, "orc": 1.30, "neg": 1.00,
    "extsb": 1.00, "extsh": 1.00, "extsw": 1.05,
    "addi": 0.95, "addis": 0.95, "ori": 0.90, "oris": 0.90,
    "xori": 0.90, "xoris": 0.90, "andi.": 1.05,
    # integer loads
    "lbz": 1.31, "lhz": 1.35, "lwz": 1.40, "ld": 1.45,
    "lbzx": 1.36, "lhzx": 1.40, "lwzx": 1.45, "ldx": 1.50,
    "lha": 1.95, "lwa": 2.00, "lhax": 1.98, "lwax": 2.05,
    "lbzu": 1.90, "lhzu": 1.95, "lwzu": 2.00, "ldu": 2.05,
    "lbzux": 1.95, "lhzux": 2.00, "lwzux": 2.05, "ldux": 2.20,
    "lhau": 1.32, "lhaux": 1.62, "lwaux": 1.48,
    # float loads
    "lfs": 1.50, "lfd": 1.55, "lfsx": 1.55, "lfdx": 1.60,
    "lfsu": 1.69, "lfdu": 1.72, "lfsux": 1.75, "lfdux": 1.78,
    # vector loads
    "lvx": 1.72, "lvebx": 1.70, "lvehx": 1.70, "lvewx": 1.78,
    "lxvw4x": 2.10, "lxvd2x": 1.82, "lxsdx": 1.70,
    # integer stores
    "stb": 1.30, "sth": 1.34, "stw": 1.38, "std": 1.44,
    "stbx": 1.35, "sthx": 1.39, "stwx": 1.43, "stdx": 1.49,
    "stbu": 1.60, "sthu": 1.64, "stwu": 1.68, "stdu": 1.74, "stdux": 1.80,
    # float/vector stores (LSU+VSU), the most expensive memory class
    "stfs": 1.80, "stfd": 1.88, "stfsx": 1.85, "stfdx": 1.92,
    "stvx": 2.60, "stvewx": 2.20,
    "stxvw4x": 2.74, "stxvd2x": 2.70, "stxsdx": 2.31,
    "stfsu": 2.00, "stfdu": 2.03, "stfsux": 2.45, "stfdux": 2.31,
    # scalar float
    "fadd": 0.90, "fsub": 0.90, "fmul": 1.05, "fmadd": 1.25,
    "fmsub": 1.25, "fdiv": 2.40, "fsqrt": 2.60,
    "fabs": 0.60, "fneg": 0.60, "fmr": 0.60, "frsp": 0.80,
    "xsadddp": 0.95, "xssubdp": 0.95, "xsmuldp": 1.10, "xsdivdp": 2.40,
    "xsmaddadp": 1.30, "xssqrtdp": 2.60, "xstsqrtdp": 0.78, "xscmpudp": 0.70,
    # vector float: the xvmaddadp / xstsqrtdp Table 3 contrast
    "xvadddp": 1.00, "xvsubdp": 1.00, "xvmuldp": 1.20,
    "xvmaddadp": 1.36, "xvmaddmdp": 1.35,
    "xvnmsubadp": 1.25, "xvnmsubmdp": 1.58,
    "xvdivdp": 2.60, "xvsqrtdp": 2.80,
    "xvaddsp": 0.95, "xvmulsp": 1.10, "xvmaddasp": 1.25,
    # VMX integer
    "vand": 0.85, "vor": 0.85, "vxor": 0.85, "vadduwm": 0.90,
    "vmaxsw": 0.95, "vmladduhm": 1.30,
    # decimal
    "dadd": 1.60, "dsub": 1.60, "dmul": 2.20, "ddiv": 3.20,
    # branches and CR plumbing
    "b": 1.00, "bl": 1.20, "bc": 1.10, "beq": 1.10, "bne": 1.10,
    "bdnz": 1.15, "blr": 1.10, "bctr": 1.10,
    "mtctr": 1.20, "mfctr": 1.20, "mtlr": 1.20, "mflr": 1.20,
    # hints
    "dcbt": 0.80, "dcbtst": 0.80,
}


def order_multiplier(alternation: float) -> float:
    """Switching-power multiplier from instruction-order alternation."""
    return ORDER_BASE + ORDER_SPAN * alternation


def data_multiplier(entropy: float) -> float:
    """Toggling multiplier from operand-data entropy."""
    return DATA_BASE + DATA_SPAN * entropy


def cmp_effect(cores: int) -> float:
    """Uncore power growth with enabled cores (concave, in watts)."""
    return CMP_LINEAR * cores + CMP_CONCAVE * cores ** CMP_EXPONENT


class GroundTruthPowerModel:
    """Computes true chip power from per-thread activity vectors."""

    def __init__(self, arch: MicroArchitecture) -> None:
        self.arch = arch
        self._energy_cache: dict[str, float] = {}
        # Low-power core classes (the eco LITTLE core) declare a
        # dynamic-energy discount in their definition file; the
        # reference big core's 1.0 skips the multiplication entirely so
        # every pre-heterogeneity power is reproduced bit for bit.
        self.energy_scale = arch.chip.energy_scale

    def instruction_energy(self, mnemonic: str) -> float:
        """True energy (nJ) dissipated per dynamic instance.

        Cache/memory access energy is accounted separately per level.
        """
        cached = self._energy_cache.get(mnemonic)
        if cached is not None:
            return cached
        props = self.arch.props(mnemonic)
        multiplier = ENERGY_MULTIPLIER.get(mnemonic, 1.0)
        energy = 0.0
        for usage in props.usages:
            base = sum(UNIT_ENERGY_NJ[unit] for unit in usage.units)
            base /= len(usage.units)
            energy += usage.ops * base
        energy = energy * multiplier if energy else NOP_ENERGY_NJ
        self._energy_cache[mnemonic] = energy
        return energy

    def thread_dynamic_power(self, activity: ThreadActivity) -> float:
        """Dynamic watts dissipated by one hardware thread."""
        order = order_multiplier(activity.alternation)
        data = data_multiplier(activity.entropy)

        if activity.insn_rates:
            core_joules = sum(
                self.instruction_energy(mnemonic) * 1e-9 * rate
                for mnemonic, rate in activity.insn_rates.items()
            )
        else:
            core_joules = sum(
                PROFILE_UNIT_ENERGY_NJ.get(unit, 0.5) * 1e-9 * rate
                * activity.unit_energy_bias.get(unit, 1.0)
                for unit, rate in activity.unit_op_rates.items()
            )

        level_joules = sum(
            LEVEL_ENERGY_NJ[level] * 1e-9 * rate
            for level, rate in activity.level_rates.items()
            if level in LEVEL_ENERGY_NJ
        )
        power = order * data * core_joules + data * level_joules
        if self.energy_scale != 1.0:
            power *= self.energy_scale
        return power

    def chip_power(
        self,
        thread_activities: Sequence[ThreadActivity],
        config: MachineConfig,
    ) -> float:
        """True chip power (watts) for a running configuration.

        DVFS scaling follows ``P = C * V^2 * f`` for the dynamic part:
        the ``f`` term is already inside the per-second activity rates
        (the machine re-clocks activities before measuring), so only
        the ``V^2`` multiplier applies here.  The static components
        (idle, uncore, CMP effect, SMT control logic) are modeled as
        frequency-independent and are never scaled; the nominal
        p-state therefore reproduces pre-DVFS power exactly.
        """
        active = any(
            activity.instruction_rate > 0 for activity in thread_activities
        )
        power = IDLE_POWER
        if active:
            power += UNCORE_ACTIVE
            power += cmp_effect(config.cores)
            if config.smt_enabled:
                power += SMT_LOGIC * config.cores
            dynamic = sum(
                self.thread_dynamic_power(activity)
                for activity in thread_activities
            )
            p_state = config.p_state
            if not p_state.is_nominal:
                dynamic *= p_state.dynamic_scale
            power += dynamic
        return power

    def idle_power(self) -> float:
        """True power with no workload running."""
        return IDLE_POWER


def topology_power(cluster_parts: Sequence[tuple], total_cores: int) -> float:
    """True chip power of a heterogeneous multi-cluster chip, watts.

    ``cluster_parts`` is one ``(cluster, power_model, activities)``
    triple per cluster: the :class:`~repro.sim.topology.CoreCluster`,
    the cluster core class's :class:`GroundTruthPowerModel`, and the
    per-thread activity vectors of the cluster (already re-clocked to
    the cluster's operating point).

    Chip-level semantics generalize :meth:`GroundTruthPowerModel.chip_power`:
    the idle floor and active-uncore power are chip-wide and counted
    once; the *concave* part of the CMP effect grows with the total
    enabled core count (the interconnect is shared) while the *linear*
    per-core part is paid per cluster, scaled by the core class's
    energy scale (little cores drive a smaller uncore share); SMT
    control logic is paid per cluster whose SMT facility is on; and
    each cluster's dynamic power is evaluated with its own core
    class's energy model and scaled by its own operating point's
    ``V^2`` term -- per-cluster DVFS domains.  A single-cluster part
    list on the base class reproduces the homogeneous
    :func:`cmp_effect` value (``energy_scale`` is 1.0 there), summed
    in per-term order.
    """
    active = any(
        activity.instruction_rate > 0
        for _, _, activities in cluster_parts
        for activity in activities
    )
    power = IDLE_POWER
    if active:
        power += UNCORE_ACTIVE
        power += CMP_CONCAVE * total_cores ** CMP_EXPONENT
        for cluster, model, _ in cluster_parts:
            power += CMP_LINEAR * cluster.cores * model.energy_scale
            if cluster.smt_enabled:
                power += SMT_LOGIC * cluster.cores
        for cluster, model, activities in cluster_parts:
            dynamic = sum(
                model.thread_dynamic_power(activity)
                for activity in activities
            )
            p_state = cluster.p_state
            if not p_state.is_nominal:
                dynamic *= p_state.dynamic_scale
            power += dynamic
    return power
