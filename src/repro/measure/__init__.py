"""Experimental measurement framework (paper section 3).

Mirrors the paper's platform harness: workloads are deployed as one
copy per hardware thread, pinned to logical CPUs, run for a 10-second
window while power sensors sample at 1 ms granularity and performance
counters accumulate.  Traces are reduced POTRA-style into
:class:`~repro.measure.measurement.Measurement` records consumed by the
modeling code.
"""

from repro.measure.measurement import Measurement
from repro.measure.runner import MeasurementRunner
from repro.measure.traces import TraceStatistics, analyze_trace

__all__ = [
    "Measurement",
    "MeasurementRunner",
    "TraceStatistics",
    "analyze_trace",
]
