"""POTRA-like sensor-trace reduction.

The paper analyses power and counter traces with the POTRA framework;
here we provide the reduction actually needed by the case studies:
summary statistics, phase segmentation of a trace, and a stability
check that validates the 10-second-window methodology (the window is
long enough when the standard error of the mean is well under the
sensor quantum scale).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of one power trace."""

    mean: float
    std: float
    minimum: float
    maximum: float
    sample_count: int

    @property
    def standard_error(self) -> float:
        """Standard error of the mean."""
        if self.sample_count == 0:
            return 0.0
        return self.std / self.sample_count ** 0.5

    def is_stable(self, tolerance: float = 0.05) -> bool:
        """Whether the window mean is trustworthy at ``tolerance`` watts."""
        return self.standard_error <= tolerance


def analyze_trace(trace: np.ndarray) -> TraceStatistics:
    """Reduce a raw 1 ms sensor trace to summary statistics."""
    if trace.size == 0:
        raise ValueError("cannot analyze an empty trace")
    return TraceStatistics(
        mean=float(np.mean(trace)),
        std=float(np.std(trace)),
        minimum=float(np.min(trace)),
        maximum=float(np.max(trace)),
        sample_count=int(trace.size),
    )


def segment_phases(
    trace: np.ndarray,
    window: int = 250,
    threshold: float = 1.5,
) -> list[tuple[int, int, float]]:
    """Split a trace into phases of stable mean power.

    A new phase starts when the windowed mean moves more than
    ``threshold`` watts away from the current phase mean.  Returns
    ``(start, end, mean)`` sample spans.  Used by the phase-aware
    projection example (the paper's query (a): phase-specific power).
    """
    if trace.size == 0:
        raise ValueError("cannot segment an empty trace")
    window = max(1, min(window, trace.size))
    phases: list[tuple[int, int, float]] = []
    start = 0
    current_sum = 0.0
    count = 0
    for index in range(0, trace.size, window):
        chunk = trace[index:index + window]
        chunk_mean = float(np.mean(chunk))
        if count and abs(chunk_mean - current_sum / count) > threshold:
            phases.append((start, index, current_sum / count))
            start = index
            current_sum, count = 0.0, 0
        current_sum += chunk_mean
        count += 1
    phases.append((start, trace.size, current_sum / max(count, 1)))
    return phases
