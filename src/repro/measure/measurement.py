"""Measurement records: what modeling code is allowed to see.

A :class:`Measurement` carries performance-counter readings per
hardware thread plus reduced power-sensor statistics for one
measurement window.  It is the *only* interface between the machine
substrate and the power-modeling code, preserving the post-silicon
blindness of the paper's methodology.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.sim.config import MachineConfig
from repro.sim.topology import ChipTopology

#: Default measurement window, matching the paper's 10-second runs.
DEFAULT_DURATION_S = 10.0


@dataclass(frozen=True)
class Measurement:
    """One measurement window of one workload on one configuration.

    Attributes:
        workload_name: Identifier of the workload that ran.
        config: The CMP-SMT configuration used.
        duration: Window length in seconds.
        thread_counters: Per-hardware-thread counter readings
            (counts over the window, not rates).
        mean_power: Sensor-reported mean chip power over the window, W.
        power_std: Per-sample sensor noise, W.
        sample_count: Number of 1 ms sensor samples in the window.
    """

    workload_name: str
    config: MachineConfig | ChipTopology
    duration: float
    thread_counters: tuple[Mapping[str, float], ...]
    mean_power: float
    power_std: float
    sample_count: int
    thread_workloads: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if len(self.thread_counters) != self.config.threads:
            raise ValueError(
                f"expected {self.config.threads} per-thread counter sets, "
                f"got {len(self.thread_counters)}"
            )
        if (
            self.thread_workloads is not None
            and len(self.thread_workloads) != self.config.threads
        ):
            raise ValueError(
                f"expected {self.config.threads} per-thread workload "
                f"names, got {len(self.thread_workloads)}"
            )

    @classmethod
    def unchecked(
        cls,
        workload_name: str,
        config: MachineConfig,
        duration: float,
        thread_counters: tuple,
        mean_power: float,
        power_std: float,
        sample_count: int,
        thread_workloads: tuple | None = None,
    ) -> "Measurement":
        """Construct without ``__post_init__`` validation.

        The vectorized measurement plane builds tens of thousands of
        measurements per second whose invariants hold by construction;
        this bypasses the dataclass ``__init__`` while living next to
        the field list, so a schema change updates both in one place.
        The result is indistinguishable from a normally built instance.
        """
        measurement = object.__new__(cls)
        measurement.__dict__.update(
            workload_name=workload_name,
            config=config,
            duration=duration,
            thread_counters=thread_counters,
            mean_power=mean_power,
            power_std=power_std,
            sample_count=sample_count,
            thread_workloads=thread_workloads,
        )
        return measurement

    @property
    def threads(self) -> int:
        return self.config.threads

    @property
    def is_heterogeneous(self) -> bool:
        """Whether different hardware threads ran different workloads."""
        return (
            self.thread_workloads is not None
            and len(set(self.thread_workloads)) > 1
        )

    def total_counters(self) -> dict[str, float]:
        """Counter readings summed over all hardware threads."""
        totals: dict[str, float] = {}
        for counters in self.thread_counters:
            for name, value in counters.items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def thread_rates(self, thread: int = 0) -> dict[str, float]:
        """Per-second rates for one hardware thread."""
        return {
            name: value / self.duration
            for name, value in self.thread_counters[thread].items()
        }

    def thread_ipc(self, thread: int = 0) -> float:
        """Committed IPC of one hardware thread, from its counters.

        This is the per-thread view co-scheduling analyses need: with a
        heterogeneous placement each thread's counters describe *its*
        workload, not a chip average.
        """
        counters = self.thread_counters[thread]
        cycles = counters.get("PM_RUN_CYC", 0.0)
        if not cycles:
            return 0.0
        return counters.get("PM_RUN_INST_CMPL", 0.0) / cycles

    def thread_ipcs(self) -> tuple[float, ...]:
        """Per-thread committed IPCs, placement declaration order."""
        return tuple(
            self.thread_ipc(thread) for thread in range(self.threads)
        )

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able form, round-tripped exactly by :meth:`from_dict`.

        Counter values and power statistics are floats; JSON carries
        them at full shortest-round-trip precision, so a deserialized
        measurement compares equal to the original bit for bit.
        """
        return {
            "workload_name": self.workload_name,
            "config": self.config.to_dict(),
            "duration": self.duration,
            "thread_counters": [
                dict(counters) for counters in self.thread_counters
            ],
            "mean_power": self.mean_power,
            "power_std": self.power_std,
            "sample_count": self.sample_count,
            "thread_workloads": (
                list(self.thread_workloads)
                if self.thread_workloads is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Measurement":
        """Rebuild a measurement serialized by :meth:`to_dict`.

        The configuration deserializes by shape: a ``clusters`` key
        marks a heterogeneous :class:`~repro.sim.topology.ChipTopology`,
        anything else is a :class:`MachineConfig`.
        """
        config_data = data["config"]
        config = (
            ChipTopology.from_dict(config_data)
            if "clusters" in config_data
            else MachineConfig.from_dict(config_data)
        )
        thread_workloads = data.get("thread_workloads")
        return cls(
            workload_name=data["workload_name"],
            config=config,
            duration=data["duration"],
            thread_counters=tuple(
                dict(counters) for counters in data["thread_counters"]
            ),
            mean_power=data["mean_power"],
            power_std=data["power_std"],
            sample_count=data["sample_count"],
            thread_workloads=(
                tuple(thread_workloads) if thread_workloads is not None else None
            ),
        )

    def mean_rates(self) -> dict[str, float]:
        """Per-second rates averaged across threads."""
        totals = self.total_counters()
        scale = self.duration * self.threads
        return {name: value / scale for name, value in totals.items()}
