"""Measurement campaign runner (paper section 3).

The runner mirrors the paper's experimental procedure: every workload
is deployed as one copy per hardware thread of the configuration
(pinning is implicit in the machine model -- threads never migrate),
runs for a fixed 10-second window, and yields a
:class:`~repro.measure.measurement.Measurement`.  Campaign helpers
sweep workload sets across configuration lists, which is how the
training and validation datasets of Section 4 are gathered.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.measure.measurement import DEFAULT_DURATION_S, Measurement
from repro.sim.config import MachineConfig, standard_configurations
from repro.sim.pstate import PState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Machine


class MeasurementRunner:
    """Runs measurement campaigns on one machine."""

    def __init__(
        self, machine: "Machine", duration: float = DEFAULT_DURATION_S
    ) -> None:
        self.machine = machine
        self.duration = duration

    def run(self, workload, config: MachineConfig) -> Measurement:
        """Measure one workload on one configuration."""
        return self.machine.run(workload, config, self.duration)

    def run_suite(
        self, workloads: Iterable, config: MachineConfig
    ) -> list[Measurement]:
        """Measure a workload set on one configuration."""
        return [self.run(workload, config) for workload in workloads]

    def run_sweep(
        self,
        workloads: Sequence,
        configs: Sequence[MachineConfig] | None = None,
        p_states: Sequence[PState] | None = None,
    ) -> dict[MachineConfig, list[Measurement]]:
        """Measure a workload set across a configuration sweep.

        Defaults to the paper's 24-configuration CMP-SMT sweep.
        Explicit ``configs`` are measured exactly as given -- including
        any operating points they carry.  Passing ``p_states`` crosses
        the configuration list's CMP-SMT modes with that DVFS ladder
        instead, p-state-major: the scenario space grows to ``configs x
        p_states`` (and workloads may be placements, so mixes sweep the
        same way).  Duplicate swept configurations are measured once.
        """
        if configs is None:
            configs = standard_configurations(
                self.machine.arch.chip.max_cores,
                self.machine.arch.chip.smt_modes(),
            )
        if p_states is None:
            swept = list(configs)
        else:
            swept = [
                config.with_p_state(p_state)
                for p_state in p_states
                for config in configs
            ]
        results: dict[MachineConfig, list[Measurement]] = {}
        for config in swept:
            if config not in results:
                results[config] = self.run_suite(workloads, config)
        return results

    def baseline(self, config: MachineConfig | None = None) -> Measurement:
        """Measure workload-independent (idle) power."""
        return self.machine.run_idle(config, self.duration)
