"""Measurement campaign runner (paper section 3).

The runner mirrors the paper's experimental procedure: every workload
is deployed as one copy per hardware thread of the configuration
(pinning is implicit in the machine model -- threads never migrate),
runs for a fixed 10-second window, and yields a
:class:`~repro.measure.measurement.Measurement`.  Campaign helpers
sweep workload sets across configuration lists, which is how the
training and validation datasets of Section 4 are gathered.

Since the execution-engine refactor the runner is a thin veneer over
:mod:`repro.exec`: every entry point emits an
:class:`~repro.exec.plan.ExperimentPlan` and hands it to an executor,
so suites batch through ``Machine.run_many``, sweeps deduplicate
repeated cells, and attaching a store-backed or parallel executor
accelerates any caller without further changes here.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.measure.measurement import DEFAULT_DURATION_S, Measurement
from repro.sim.config import MachineConfig, standard_configurations
from repro.sim.pstate import PState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec.executors import _ExecutorBase
    from repro.sim.machine import Machine


class MeasurementRunner:
    """Runs measurement campaigns on one machine.

    ``executor`` defaults to the environment-resolved executor
    (``REPRO_PARALLEL``/``REPRO_STORE``; a plain in-process
    :class:`~repro.exec.executors.SerialExecutor` when neither is
    set); pass a :class:`~repro.exec.executors.ParallelExecutor` or a
    store-backed executor explicitly to shard or persist every
    campaign this runner drives.  A service URL string (or a
    :class:`~repro.exec.client.RemoteExecutor`) routes every campaign
    to a running ``python -m repro serve`` instead -- bit-identical
    results, resident caches and cross-client dedup on the server.
    """

    def __init__(
        self,
        machine: "Machine",
        duration: float = DEFAULT_DURATION_S,
        executor: "_ExecutorBase | str | None" = None,
    ) -> None:
        # Imported here, not at module level: repro.exec consumes
        # Measurement (and therefore this package), so the runner binds
        # to the engine lazily to keep the import graph acyclic.
        from repro.exec.executors import default_executor

        self.machine = machine
        self.duration = duration
        if isinstance(executor, str):
            from repro.exec.client import RemoteExecutor

            executor = RemoteExecutor(
                executor,
                arch=machine.arch.name,
                seed=machine.seed,
                vector=machine.vector_enabled,
            )
        self.executor = (
            executor if executor is not None else default_executor(machine)
        )
        # Idle power is workload-independent: one measurement per
        # (configuration, window) serves every baseline request.
        self._baselines: dict[tuple[MachineConfig, float], Measurement] = {}

    @property
    def last_report(self):
        """The executor's :class:`~repro.exec.report.ExecutionReport`
        for the most recent campaign (fault counters, quarantined
        cells), or ``None`` before the first run.  Runner entry points
        raise :class:`~repro.errors.ExecutionError` on quarantined
        cells -- the raised error carries the same report."""
        return self.executor.last_report

    def run(self, workload, config: MachineConfig) -> Measurement:
        """Measure one workload on one configuration."""
        from repro.exec.plan import ExperimentPlan

        return self.executor.run(
            ExperimentPlan.single(workload, config, self.duration)
        )[0]

    def run_suite(
        self, workloads: Iterable, config: MachineConfig
    ) -> list[Measurement]:
        """Measure a workload set on one configuration (one batch)."""
        from repro.exec.plan import ExperimentPlan

        return self.executor.run(
            ExperimentPlan.cross(list(workloads), [config], duration=self.duration)
        )

    def run_sweep(
        self,
        workloads: Sequence,
        configs: Sequence | None = None,
        p_states: Sequence[PState] | None = None,
    ) -> dict:
        """Measure a workload set across a configuration sweep.

        Defaults to the paper's 24-configuration CMP-SMT sweep.
        Explicit ``configs`` are measured exactly as given -- including
        any operating points they carry -- and may mix
        :class:`~repro.sim.config.MachineConfig` entries with
        heterogeneous :class:`~repro.sim.topology.ChipTopology` chips
        (e.g. a :func:`~repro.sim.topology.topology_ladder` big:little
        ratio ladder), so one sweep spans homogeneous and
        cross-architecture scenarios.  Passing ``p_states`` crosses
        the configuration list's CMP-SMT modes with that DVFS ladder
        instead, p-state-major (a topology moves *all* its clusters to
        each swept point): the scenario space grows to ``configs x
        p_states`` (and workloads may be placements, so mixes sweep the
        same way).  Duplicate swept configurations are measured once
        (the plan deduplicates their cells); infeasible configurations
        raise :class:`~repro.errors.PlanValidationError` before
        anything is measured.
        """
        from repro.exec.plan import ExperimentPlan, sweep_configs

        if configs is None:
            configs = standard_configurations(
                self.machine.arch.chip.max_cores,
                self.machine.arch.chip.smt_modes(),
            )
        # First-wins dedup *before* planning: the returned dict is
        # keyed by configuration, whose equality ignores the p-state
        # name, so a same-scale differently-named duplicate could
        # neither be represented in the result nor usefully measured
        # (exactly the pre-engine behaviour, without wasted cells).
        swept: list = []
        seen: set = set()
        for config in sweep_configs(configs, p_states):
            if config not in seen:
                seen.add(config)
                swept.append(config)
        workloads = list(workloads)
        plan = ExperimentPlan.cross(workloads, swept, duration=self.duration)
        measurements = self.executor.run(plan)
        width = len(workloads)
        return {
            config: measurements[index * width : (index + 1) * width]
            for index, config in enumerate(swept)
        }

    def baseline(self, config=None) -> Measurement:
        """Measure workload-independent (idle) power.

        Memoized per (configuration, window): idle power does not
        depend on any workload, so repeated baseline requests -- every
        model-fitting step asks for one -- reuse the first measurement.
        ``config`` may be a :class:`~repro.sim.topology.ChipTopology`.
        """
        resolved = config if config is not None else MachineConfig(1, 1)
        # The label joins the key: config equality ignores the p-state
        # name, but the label seeds the idle run's noise draws.
        key = (resolved, resolved.label, self.duration)
        found = self._baselines.get(key)
        if found is None:
            found = self.machine.run_idle(resolved, self.duration)
            self._baselines[key] = found
        return found
