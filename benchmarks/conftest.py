"""Shared fixtures for the experiment benchmarks.

Every figure/table harness draws from one session-scoped modeling
campaign and one bootstrap pass, so the whole benchmark run gathers
its measurements exactly once.  Scale knobs:

* ``REPRO_SCALE``     -- training-suite scale factor (default 0.3;
  1.0 reproduces the paper's ~580-benchmark suite),
* ``REPRO_LOOP_SIZE`` -- generated loop size (default 1024; paper 4096).

The reported *numbers* are stable across scales (the steady-state
analytics are size-invariant); larger scales only tighten the fitted
weights.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.march import get_architecture
from repro.march.bootstrap import Bootstrapper
from repro.power_model.campaign import ModelingCampaign
from repro.sim import Machine

SCALE = float(os.environ.get("REPRO_SCALE", "0.3"))
LOOP_SIZE = int(os.environ.get("REPRO_LOOP_SIZE", "1024"))

#: Machine-readable benchmark results, merged across the bench session,
#: so the perf trajectory is tracked across PRs (CI uploads the file as
#: an artifact).  Benches call :func:`record_result` with their
#: headline numbers; the file is rewritten on every record (it is tiny,
#: and pytest may load this conftest under two module names, so a
#: session-end hook could see an empty dict).
BENCH_RESULTS_PATH = Path(
    os.environ.get("REPRO_BENCH_RESULTS", "BENCH_results.json")
)


def record_result(name: str, **metrics) -> None:
    """Merge one benchmark's headline metrics into BENCH_results.json."""
    try:
        payload = json.loads(BENCH_RESULTS_PATH.read_text())
        if payload.get("format") != "repro-bench-v1":
            raise ValueError
    except (OSError, ValueError):
        payload = {"format": "repro-bench-v1", "results": {}}
    payload.update(
        recorded_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        platform=platform.platform(),
        python=platform.python_version(),
        repro_scale=SCALE,
        loop_size=LOOP_SIZE,
    )
    payload["results"].setdefault(name, {}).update(metrics)
    BENCH_RESULTS_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True)
    )


@pytest.fixture(scope="session")
def machine():
    return Machine(get_architecture("POWER7"))


@pytest.fixture(scope="session")
def arch(machine):
    return machine.arch


@pytest.fixture(scope="session")
def campaign_result(machine):
    """The full section-4 campaign: models plus SPEC validation data."""
    campaign = ModelingCampaign(machine, scale=SCALE, loop_size=LOOP_SIZE)
    return campaign.run()


@pytest.fixture(scope="session")
def bootstrap_records(machine, arch):
    """Bootstrap of every probeable instruction (sections 2.1.2, 5)."""
    bootstrapper = Bootstrapper(arch, machine, loop_size=256)
    return bootstrapper.run()
