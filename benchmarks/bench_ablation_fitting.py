"""Ablation: sequential (paper) vs joint fitting of the BU weights.

DESIGN.md calls out the step-1 fitting protocol as a design choice:
the paper fits components through a *sequence* of regressions over the
families crafted for each component; a single joint NNLS over all
components is the obvious alternative.  This bench trains both
variants on the same measurements and compares SPEC validation error
and weight physicality.
"""

from __future__ import annotations

import statistics

from repro.power_model.bottom_up import BottomUpTrainer
from repro.power_model.campaign import ModelingCampaign
from repro.power_model.metrics import paae
from repro.sim import Machine


def test_ablation_sequential_vs_joint(benchmark):
    campaign = ModelingCampaign(Machine(), scale=0.2, loop_size=512)
    data = campaign.gather()
    spec_by_config = campaign.gather_spec()

    def train(sequential: bool):
        return BottomUpTrainer(sequential=sequential).train(
            suite_smt1=data["suite_smt1"],
            suite_smt2=data["suite_smt2"],
            suite_smt4=data["suite_smt4"],
            random_all_configs=data["random_all"],
            idle=data["idle"],
        )

    sequential = benchmark.pedantic(
        lambda: train(True), rounds=1, iterations=1
    )
    joint = train(False)

    def mean_paae(model):
        return statistics.fmean(
            paae(model, measurements)
            for measurements in spec_by_config.values()
        )

    results = {"sequential": mean_paae(sequential), "joint": mean_paae(joint)}
    print("\n=== Ablation: BU weight-fitting protocol ===")
    print(f"{'Protocol':12s} {'SPEC PAAE':>10s}  weights (nJ/event)")
    for name, model in (("sequential", sequential), ("joint", joint)):
        weights = " ".join(
            f"{component}={value * 1e9:.2f}"
            for component, value in model.weights.items()
        )
        print(f"{name:12s} {results[name]:9.2f}%  {weights}")

    # Both protocols must deliver usable models; the sequential one
    # must produce physically ordered memory energies (the joint fit
    # may trade physicality for in-sample fit under collinearity).
    assert results["sequential"] < 5.0
    assert results["joint"] < 8.0
    weights = sequential.weights
    assert weights["L1"] < weights["L2"] < weights["L3"] < weights["MEM"]
