"""Figure 9: max-power stressmark sets vs the SPEC CPU2006 maximum.

Reproduces the whole section-6 flow: bootstrap-driven IPC*EPI candidate
selection (mulldo / lxvw4x / xvnmsubmdp on this substrate, matching
Table 3's category tops), the expert-manual and expert-DSE baselines,
the exhaustive search over the pruned sequence space, DAXPY kernels,
and the ordering analysis behind the "same mix, different order, up to
17% power difference" observation.

Paper headline: the systematically generated stressmark exceeds the
maximum SPEC CPU2006 power by 10.7% and edges out the expert's DSE.
"""

from __future__ import annotations

from repro.exec import ExperimentPlan, default_executor
from repro.sim import MachineConfig
from repro.stressmark import (
    expert_dse_set,
    expert_manual_set,
    select_candidates,
    spec_power_baseline,
    stressmark_search,
)
from repro.stressmark.report import (
    best_sequence,
    order_spread_analysis,
    summarize_set,
)
from repro.stressmark.search import covering_sequences
from repro.workloads import daxpy_kernels

_EVAL_LOOP = 384


def test_fig9_stressmarks(benchmark, machine, arch, bootstrap_records):
    candidates = select_candidates(arch, bootstrap_records)
    print(f"\nIPC*EPI candidates: {candidates} "
          "(paper: mulldo / lxvw4x / xvnmsubmdp)")
    assert candidates == {
        "FXU": "mulldo", "LSU": "lxvw4x", "VSU": "xvnmsubmdp",
    }

    # One engine executor for the whole figure (a warm REPRO_STORE
    # serves everything without touching the machine; REPRO_PARALLEL
    # reuses one worker pool across all five searches).
    executor = default_executor(machine)
    baseline = spec_power_baseline(machine, executor=executor)

    results = {
        "Expert manual": stressmark_search(
            machine, expert_manual_set(), loop_size=_EVAL_LOOP,
            executor=executor,
        ),
        "Expert DSE": stressmark_search(
            machine, expert_dse_set(), loop_size=_EVAL_LOOP,
            executor=executor,
        ),
    }
    results["MicroProbe"] = benchmark.pedantic(
        lambda: stressmark_search(
            machine,
            covering_sequences(tuple(candidates.values())),
            loop_size=_EVAL_LOOP,
            executor=executor,
        ),
        rounds=1,
        iterations=1,
    )

    daxpy_rows = []
    kernels = daxpy_kernels(arch, loop_size=_EVAL_LOOP)
    smt_modes = arch.chip.smt_modes()
    daxpy_plan = ExperimentPlan.cross(
        kernels,
        [MachineConfig(arch.chip.max_cores, smt) for smt in smt_modes],
    )
    daxpy_measurements = executor.run(daxpy_plan)
    for mode_index, smt in enumerate(smt_modes):
        for kernel_index, kernel in enumerate(kernels):
            measurement = daxpy_measurements[
                mode_index * len(kernels) + kernel_index
            ]
            ipc = arch.ipc(measurement.thread_counters[0]) * smt
            daxpy_rows.append(
                ((kernel.name,), smt, measurement.mean_power, ipc)
            )
    results["DAXPY"] = daxpy_rows

    print("=== Figure 9: normalized power per stressmark set "
          "(1.0 = SPEC CPU2006 maximum) ===")
    summaries = {}
    for name in ("DAXPY", "Expert manual", "Expert DSE", "MicroProbe"):
        summary = summarize_set(name, results[name], baseline)
        summaries[name] = summary
        print(f"{name:14s} min={summary.minimum:.3f} "
              f"mean={summary.mean:.3f} max={summary.maximum:.3f} "
              f"(n={summary.count})")

    spread = order_spread_analysis(results["Expert DSE"], baseline)
    print(f"\nExpert-DSE sequences at max core IPC: "
          f"{spread.sequences_at_max_ipc}; power range "
          f"{spread.min_normalized:.3f}..{spread.max_normalized:.3f} "
          f"({spread.spread_percent:.1f}% order-only spread; "
          "paper: 181 sequences, -7%/+9.6%, ~17% spread)")
    print(f"Best MicroProbe sequence: "
          f"{' '.join(best_sequence(results['MicroProbe']))}")
    improvement = (summaries["MicroProbe"].maximum - 1.0) * 100.0
    print(f"MicroProbe stressmark vs SPEC max: +{improvement:.1f}% "
          "(paper: +10.7%)")

    # Paper orderings.
    assert summaries["MicroProbe"].maximum >= summaries["Expert DSE"].maximum
    assert summaries["Expert DSE"].maximum > summaries["Expert manual"].maximum
    assert summaries["Expert manual"].maximum > summaries["DAXPY"].maximum
    # The stressmark exceeds the SPEC maximum by a two-digit margin.
    assert improvement > 5.0
    # Order alone moves power by several percent at identical IPC.
    assert spread.spread_percent > 5.0
    assert spread.sequences_at_max_ipc >= 10
