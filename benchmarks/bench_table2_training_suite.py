"""Table 2: the automatically generated training micro-benchmark suite.

Regenerates the twenty families and prints, per family, the benchmark
count, the units stressed and the measured IPC coverage -- the rows of
the paper's Table 2.  The benchmark measures end-to-end generation
throughput (the paper's "few hours without any human intervention"
claim, at simulator speed).
"""

from __future__ import annotations

from benchmarks.conftest import LOOP_SIZE, SCALE
from repro.power_model.training import generate_training_suite
from repro.sim import MachineConfig


def _summarize(machine, suite):
    arch = machine.arch
    config = MachineConfig(1, 1)
    rows: dict[str, dict] = {}
    for bench in suite:
        measurement = machine.run(bench.kernel, config)
        counters = measurement.thread_counters[0]
        ipc = arch.ipc(counters)
        units = [
            unit.name for unit in arch.units.values()
            if counters.get(unit.counter, 0.0)
            > 0.05 * counters.get("PM_RUN_INST_CMPL", 1.0)
        ]
        row = rows.setdefault(
            bench.family,
            {"count": 0, "ipc_min": ipc, "ipc_max": ipc, "units": set()},
        )
        row["count"] += 1
        row["ipc_min"] = min(row["ipc_min"], ipc)
        row["ipc_max"] = max(row["ipc_max"], ipc)
        row["units"].update(units)
    return rows


def test_table2_training_suite(benchmark, machine, arch):
    suite = benchmark.pedantic(
        lambda: generate_training_suite(arch, LOOP_SIZE, SCALE),
        rounds=1,
        iterations=1,
    )
    rows = _summarize(machine, suite)

    print("\n=== Table 2: training micro-benchmark suite "
          f"(scale={SCALE}, loop={LOOP_SIZE}) ===")
    print(f"{'Family':16s} {'#':>4s} {'IPC range':>14s}  Units stressed")
    total = 0
    for family, row in rows.items():
        total += row["count"]
        ipc_range = f"{row['ipc_min']:.2f}-{row['ipc_max']:.2f}"
        print(
            f"{family:16s} {row['count']:4d} {ipc_range:>14s}  "
            f"{', '.join(sorted(row['units']))}"
        )
    print(f"{'TOTAL':16s} {total:4d}   (paper: ~583 at scale=1.0)")

    assert total >= 50
    assert "Random" in rows
    sweep = rows["Simple Integer"]
    assert sweep["ipc_max"] > sweep["ipc_min"] + 0.5, "IPC sweep collapsed"
