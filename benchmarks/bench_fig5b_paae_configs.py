"""Figure 5b: bottom-up model PAAE across the 24 CMP-SMT configurations.

Paper result: mean PAAE 2.3% across SPEC CPU2006, maximum around 4%,
with a mild error rise toward higher core counts (the linearized CMP
effect against a curved ground truth).
"""

from __future__ import annotations

import statistics


def test_fig5b_paae(benchmark, campaign_result):
    model = campaign_result.bottom_up

    def compute():
        return {
            config: statistics.fmean(
                abs(model.predict(m) - m.mean_power) / m.mean_power * 100.0
                for m in measurements
            )
            for config, measurements in campaign_result.spec_by_config.items()
        }

    paae_by_config = benchmark.pedantic(compute, rounds=1, iterations=1)

    print("\n=== Figure 5b: BU model PAAE per CMP-SMT configuration ===")
    for config, value in paae_by_config.items():
        bar = "#" * int(value * 10)
        print(f"{config.label:>5s}  {value:5.2f}%  {bar}")
    mean = statistics.fmean(paae_by_config.values())
    worst = max(paae_by_config.values())
    print(f"{'Mean':>5s}  {mean:5.2f}%   (paper: 2.3% mean, ~4% max; "
          f"measured max {worst:.2f}%)")

    assert mean < 4.0, "mean PAAE above the paper's regime"
    assert worst < 7.0, "worst-case PAAE way above the paper's regime"

    # The paper's trend: errors grow toward higher core counts before
    # flattening; check the high-core half is no better than the
    # low-core half on average.
    low = statistics.fmean(
        v for c, v in paae_by_config.items() if c.cores <= 4
    )
    high = statistics.fmean(
        v for c, v in paae_by_config.items() if c.cores > 4
    )
    assert high >= low - 0.5
