"""Figure 8: average SPEC power breakdown across all 24 configurations.

Paper results reproduced here:

* the configuration-independent components (workload-independent +
  uncore) fall from ~85% of total power at 1-1 to ~50% at 8-4;
* enabling SMT shifts roughly 10 points into the dynamic component;
* the SMT-effect component itself stays minimal (<3% everywhere);
* beyond 4 cores the percentage breakdown changes only slowly
  (1-1 to 2-1 drops the static share far more than 7-1 to 8-1).
"""

from __future__ import annotations

import statistics

_COMPONENTS = (
    "Workload_Independent", "Uncore", "CMP_effect", "SMT_effect", "Dynamic",
)


def test_fig8_breakdown_sweep(benchmark, campaign_result):
    model = campaign_result.bottom_up

    def compute():
        shares = {}
        for config, measurements in campaign_result.spec_by_config.items():
            stacks = [model.breakdown(m) for m in measurements]
            mean_parts = {
                key: statistics.fmean(stack[key] for stack in stacks)
                for key in _COMPONENTS
            }
            total = sum(mean_parts.values())
            shares[config] = {
                key: value / total * 100.0
                for key, value in mean_parts.items()
            }
        return shares

    shares = benchmark.pedantic(compute, rounds=1, iterations=1)

    print("\n=== Figure 8: average SPEC power breakdown (percent) ===")
    print(f"{'Config':>6s} {'WI':>6s} {'Uncore':>7s} {'CMP':>6s} "
          f"{'SMT':>6s} {'Dynamic':>8s}")
    for config, parts in shares.items():
        print(
            f"{config.label:>6s} {parts['Workload_Independent']:6.1f} "
            f"{parts['Uncore']:7.1f} {parts['CMP_effect']:6.1f} "
            f"{parts['SMT_effect']:6.1f} {parts['Dynamic']:8.1f}"
        )

    def static_share(label):
        config = next(
            c for c in shares if c.label == label
        )
        parts = shares[config]
        return parts["Workload_Independent"] + parts["Uncore"]

    lowest = static_share("1-1")
    highest = static_share("8-4")
    print(f"\nStatic (WI+Uncore) share: {lowest:.0f}% at 1-1 -> "
          f"{highest:.0f}% at 8-4 (paper: 85% -> 50%)")
    drop_first = static_share("1-1") - static_share("2-1")
    drop_last = static_share("7-1") - static_share("8-1")
    print(f"Static-share drop 1-1 -> 2-1: {drop_first:.1f} points; "
          f"7-1 -> 8-1: {drop_last:.1f} points (paper: 8 vs 1)")

    assert lowest > 70.0, "1-1 static share too low vs paper's 85%"
    assert highest < 65.0, "8-4 static share should approach ~50%"
    assert drop_first > drop_last, "diminishing static-share drops"

    # SMT effect minimal everywhere (<3% in the paper).
    worst_smt = max(parts["SMT_effect"] for parts in shares.values())
    print(f"Max SMT-effect share: {worst_smt:.1f}% (paper: <3%)")
    assert worst_smt < 3.0

    # Enabling SMT raises the dynamic share by several points.
    for cores in (1, 4, 8):
        smt1 = next(c for c in shares if c.label == f"{cores}-1")
        smt4 = next(c for c in shares if c.label == f"{cores}-4")
        assert shares[smt4]["Dynamic"] > shares[smt1]["Dynamic"] + 3.0
