"""Fault-tolerance overhead: what the hardened engine costs when
nothing goes wrong, and what recovery costs when everything does.

Three numbers (recorded in ``BENCH_results.json``):

* **clean-path overhead** -- the watchdog/report plumbing must be
  nearly free when no fault plan is armed: the apply_async+watchdog
  harvest loop replaces the old ``pool.imap`` walk, and this pins its
  cost on a fault-free parallel campaign (asserted bit-identical to
  serial, reported as wall time for trend tracking);
* **crash-recovery wall time** -- the same plan with every chunk's
  first worker attempt crashing (``crash:1``): one pool respawn wave,
  every chunk re-measured, still bit-identical.  The ratio to the
  clean run is the price of a worst-case single respawn wave;
* **degraded-mode throughput** -- cells/second when chunks exhaust
  their retries and fall back to in-process per-cell execution (the
  serial last resort under an unbounded crash fault).
"""

from __future__ import annotations

import time

from benchmarks.conftest import LOOP_SIZE, record_result
from repro.exec import (
    ExperimentPlan,
    ParallelExecutor,
    SerialExecutor,
)
from repro.exec import faults
from repro.exec.faults import FaultPlan
from repro.sim import Machine
from repro.sim.config import standard_configurations
from repro.stressmark.search import build_stressmark, covering_sequences

_CANDIDATES = ("mulldo", "lxvw4x", "xvnmsubmdp")
_KERNELS = 12
_DURATION = 1.0


def _plan(arch) -> ExperimentPlan:
    sequences = covering_sequences(_CANDIDATES)[:_KERNELS]
    built = [
        build_stressmark(arch, sequence, LOOP_SIZE) for sequence in sequences
    ]
    configs = standard_configurations(
        arch.chip.max_cores, arch.chip.smt_modes()
    )
    return ExperimentPlan.cross(built, configs, duration=_DURATION)


def test_fault_tolerance_overhead_and_recovery(arch):
    plan = _plan(arch)
    serial = SerialExecutor(Machine(arch)).run(plan)

    # Clean path: no fault plan armed, watchdog harvest loop active.
    with ParallelExecutor(Machine(arch), workers=4) as executor:
        start = time.perf_counter()
        clean = executor.execute(plan)
        clean_elapsed = time.perf_counter() - start
    assert clean.ok and not clean.fault_counters
    assert list(clean) == serial

    # Crash wave: every chunk's first worker attempt dies; one respawn
    # wave re-measures everything, bit-identically.
    with faults.injected(FaultPlan(seed=7).arm("crash")):
        with ParallelExecutor(Machine(arch), workers=4) as executor:
            start = time.perf_counter()
            crashed = executor.execute(plan)
            crash_elapsed = time.perf_counter() - start
    assert crashed.ok
    assert list(crashed) == serial
    assert crashed.fault_counters["worker_respawns"] >= 1

    # Degraded mode: workers never succeed, every cell re-executes
    # in-process serially -- the engine's floor, not its normal gait.
    with faults.injected(FaultPlan(seed=7).arm("crash", times=10_000)):
        with ParallelExecutor(
            Machine(arch), workers=4, retries=0
        ) as executor:
            start = time.perf_counter()
            degraded = executor.execute(plan)
            degraded_elapsed = time.perf_counter() - start
    assert degraded.ok
    assert list(degraded) == serial
    assert degraded.fault_counters["degraded_cells"] == plan.size
    degraded_rate = plan.size / degraded_elapsed

    recovery_ratio = crash_elapsed / clean_elapsed
    print(
        f"\n=== Fault tolerance: {plan.size} cells "
        f"({_KERNELS} kernels x 24 configurations) ===\n"
        f"clean parallel: {clean_elapsed * 1e3:.0f} ms, "
        f"crash wave + respawn: {crash_elapsed * 1e3:.0f} ms "
        f"({recovery_ratio:.1f}x), "
        f"degraded serial fallback: {degraded_rate:,.0f} cells/sec"
    )
    record_result(
        "fault_tolerance",
        clean_parallel_ms=round(clean_elapsed * 1e3),
        crash_recovery_ms=round(crash_elapsed * 1e3),
        crash_recovery_ratio=round(recovery_ratio, 2),
        degraded_cells_per_sec=round(degraded_rate),
    )
    # Recovery is bounded work: one respawn wave must not blow the
    # campaign up by an order of magnitude (deterministic backoff is
    # capped at 2 s; the floor absorbs runner noise).
    assert recovery_ratio < 25.0
    # The degraded path is still a working measurement engine.
    assert degraded_rate > 20
