"""Table 3: the EPI-based instruction taxonomy.

Prints the taxonomy rows (category, core IPC, normalized EPIs) next to
the paper's values for the 24 instructions Table 3 reports, plus the
section-5 side results: the same-unit EPI spread and the zero-data EPI
reduction.  The benchmark measures the bootstrap pass itself.
"""

from __future__ import annotations

import pytest

from repro.epi import build_taxonomy, taxonomy_table
from repro.epi.taxonomy import epi_spread
from repro.march.bootstrap import Bootstrapper

#: Paper Table 3 global EPIs (normalized to addic).
PAPER_GLOBAL_EPI = {
    "mulldo": 2.60, "subf": 1.69, "addic": 1.00,
    "lxvw4x": 2.88, "lvewx": 2.81, "lbz": 2.14,
    "xvnmsubmdp": 2.35, "xvmaddadp": 2.31, "xstsqrtdp": 1.32,
    "add": 1.73, "nor": 1.58, "and": 1.16,
    "ldux": 5.12, "lwax": 5.01, "lfsu": 4.24,
    "lhaux": 5.51, "lwaux": 5.29, "lhau": 4.80,
    "stxvw4x": 8.36, "stxsdx": 7.16, "stfd": 5.97,
    "stfsux": 10.00, "stfdux": 9.49, "stfdu": 8.40,
}


def test_table3_epi_taxonomy(benchmark, machine, arch):
    bootstrapper = Bootstrapper(arch, machine, loop_size=256)
    sample = ["addic", "subf", "mulldo"]
    benchmark.pedantic(
        lambda: [bootstrapper.bootstrap_instruction(m) for m in sample],
        rounds=1,
        iterations=1,
    )

    records = bootstrapper.run()
    taxonomy = build_taxonomy(arch, records)
    by_mnemonic = {
        entry.mnemonic: entry
        for entries in taxonomy.values()
        for entry in entries
    }

    # The paper normalizes global EPI to addic (the minimum among the
    # *table* rows, not the whole ISA).
    addic_epi = by_mnemonic["addic"].epi_nj
    print("\n=== Table 3: POWER7 EPI taxonomy (global EPI normalized to addic) ===")
    print(f"{'Category':24s} {'Instr':10s} {'IPC':>5s} {'Global':>7s} "
          f"{'Paper':>6s} {'Category':>9s}")
    for entry in taxonomy_table(taxonomy):
        paper = PAPER_GLOBAL_EPI.get(entry.mnemonic)
        paper_text = f"{paper:6.2f}" if paper is not None else "     -"
        print(
            f"{entry.category:24s} {entry.mnemonic:10s} "
            f"{entry.core_ipc:5.2f} {entry.epi_nj / addic_epi:7.2f} "
            f"{paper_text} {entry.category_epi:9.2f}"
        )

    # The paper's claim is for instructions stressing the same unit *at
    # the same rate*: restrict the spread to the modal-IPC VSU group.
    vsu_entries = taxonomy.get("VSU", [])
    modal_ipc = max(
        (entry.core_ipc for entry in vsu_entries),
        key=lambda ipc: sum(
            1 for e in vsu_entries if abs(e.core_ipc - ipc) < 0.05
        ),
    )
    same_rate = [
        entry for entry in vsu_entries
        if abs(entry.core_ipc - modal_ipc) < 0.05
    ]
    spread = epi_spread(same_rate)
    print(f"\nSame-unit, same-rate (VSU @ IPC {modal_ipc:.1f}) EPI spread: "
          f"{spread:.0f}% (paper: up to 78%)")

    # Shape assertions: orderings of the paper's table hold.
    for low, high in [("addic", "subf"), ("subf", "mulldo"),
                      ("and", "nor"), ("nor", "add"),
                      ("xstsqrtdp", "xvmaddadp"), ("xvmaddadp", "xvnmsubmdp"),
                      ("lbz", "lvewx"), ("stfd", "stxsdx"),
                      ("stxsdx", "stxvw4x"), ("lfsu", "lwax"),
                      ("lwax", "ldux"), ("lhau", "lwaux"), ("lwaux", "lhaux")]:
        assert by_mnemonic[low].epi_nj < by_mnemonic[high].epi_nj, (low, high)
    assert spread > 50.0


def test_zero_data_epi_reduction(machine, arch):
    """Section 5: all-zero operand data cuts EPI by up to ~40%."""
    from repro.core.passes.distribution import InstructionDistribution
    from repro.core.passes.ilp import DependencyDistance
    from repro.core.passes.init_values import InitImmediates, InitRegisters
    from repro.core.passes.skeleton import EndlessLoopSkeleton
    from repro.core.synthesizer import Synthesizer
    from repro.sim import MachineConfig

    config = MachineConfig(8, 1)

    def measure(pool: list[str], mode: str) -> float:
        synth = Synthesizer(
            arch, seed=7, name_prefix=f"zero-data-{pool[0]}-{mode}"
        )
        synth.add_pass(EndlessLoopSkeleton(512))
        synth.add_pass(InstructionDistribution(pool))
        synth.add_pass(InitRegisters(mode))
        synth.add_pass(InitImmediates(mode))
        synth.add_pass(DependencyDistance("none"))
        return machine.run(synth.synthesize().to_kernel(), config).mean_power

    # Reference the nop loop so statics cancel and the ratio is a true
    # EPI comparison (same derivation the bootstrap uses).
    reference = measure(["nop"], "random")
    random_epi = measure(["xvmaddadp"], "random") - reference
    zero_epi = measure(["xvmaddadp"], "zero") - reference
    reduction = (1.0 - zero_epi / random_epi) * 100.0
    print(f"\nZero-data EPI reduction: {reduction:.0f}% (paper: up to 40%)")
    assert 25.0 < reduction < 50.0
