"""Evaluation-engine throughput: kernels/second at paper scale.

Pins the scaling axis of the whole system -- how many 4096-instruction
micro-benchmarks the machine substrate evaluates per second -- and
guards the O(period) fast path against regressions by comparing it
with the retained per-instruction reference walk.

Four numbers are reported (and recorded in ``BENCH_results.json``):

* ``build+run`` kernels/sec for periodic stressmark kernels across the
  three SMT modes (the Figure-9 inner loop);
* vectorized-vs-scalar measurement-plane throughput on the full
  540-sequence space (prebuilt kernels, one plan over the three SMT
  modes): the tensor plane against the retained PR-3 scalar walk,
  asserted bit-identical and >= 4x faster (typically 5-6x);
* summary-path vs reference-path evaluation time on the same kernels
  (the engine's raw speedup, asserted >= 10x);
* aperiodic-kernel evaluation throughput (the Table-2 suite shape),
  which exercises the O(loop) summarization with precompiled tables.
"""

from __future__ import annotations

import itertools
import time

from benchmarks.conftest import LOOP_SIZE, record_result
from repro.exec import ExperimentPlan, SerialExecutor
from repro.sim import Machine, MachineConfig
from repro.sim.pipeline import CorePipelineModel
from repro.stressmark.search import build_stressmark, covering_sequences

#: Stressmark candidates; the 540-point covering space is the workload.
_CANDIDATES = ("mulldo", "lxvw4x", "xvnmsubmdp")
_SMT_MODES = (1, 2, 4)


def _fresh_machine(arch) -> Machine:
    """A machine with cold summary/activity caches."""
    return Machine(arch)


def test_eval_engine_throughput(benchmark, machine, arch):
    sequences = covering_sequences(_CANDIDATES)
    cores = arch.chip.max_cores

    def evaluate_all() -> int:
        runner = _fresh_machine(arch)
        kernels = [
            build_stressmark(arch, sequence, LOOP_SIZE)
            for sequence in sequences
        ]
        for smt in _SMT_MODES:
            runner.run_many(kernels, MachineConfig(cores, smt))
        return len(kernels)

    start = time.perf_counter()
    count = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    kernels_per_second = count / elapsed
    print(
        f"\n=== Evaluation engine: {count} periodic {LOOP_SIZE}-instruction "
        f"kernels x {len(_SMT_MODES)} SMT modes ===\n"
        f"build+run throughput: {kernels_per_second:,.0f} kernels/sec "
        f"({count * len(_SMT_MODES) / elapsed:,.0f} measurements/sec)"
    )
    record_result(
        "eval_engine",
        build_and_run_kernels_per_sec=round(kernels_per_second),
    )
    # The engine must stay comfortably interactive at paper scale; the
    # pre-engine walk managed ~60 kernels/sec on commodity hardware.
    assert kernels_per_second > 200


def test_vector_measurement_plane(arch):
    """Tensor plane vs scalar reference over the full sequence space.

    Kernels are prebuilt (construction is the synthesizer's axis, not
    the measurement plane's); each path evaluates the whole 540-kernel
    x 3-SMT-mode plan on a cold machine.  The scalar pass is the
    retained PR-3 evaluation path, so the ratio is the vector plane's
    like-for-like speedup; results must agree bit for bit.
    """
    sequences = covering_sequences(_CANDIDATES)
    kernels = [
        build_stressmark(arch, sequence, LOOP_SIZE)
        for sequence in sequences
    ]
    cores = arch.chip.max_cores
    plan = ExperimentPlan.cross(
        kernels,
        [MachineConfig(cores, smt) for smt in _SMT_MODES],
        duration=10.0,
    )

    fast = SerialExecutor(Machine(arch, vector=True)).run(plan)
    reference = SerialExecutor(Machine(arch, vector=False)).run(plan)
    assert fast == reference

    def best_rate(vector: bool) -> float:
        best = None
        for _ in range(3):
            machine = Machine(arch, vector=vector)
            start = time.perf_counter()
            SerialExecutor(machine).run(plan)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return len(kernels) / best

    vector_rate = best_rate(True)
    scalar_rate = best_rate(False)
    speedup = vector_rate / scalar_rate
    print(
        f"\n=== Measurement plane: {len(kernels)} prebuilt kernels x "
        f"{len(_SMT_MODES)} SMT modes (loop {LOOP_SIZE}) ===\n"
        f"vectorized: {vector_rate:,.0f} kernels/sec, "
        f"scalar reference: {scalar_rate:,.0f} kernels/sec -> "
        f"{speedup:.1f}x speedup"
    )
    record_result(
        "eval_engine",
        vector_kernels_per_sec=round(vector_rate),
        scalar_kernels_per_sec=round(scalar_rate),
        vector_speedup=round(speedup, 2),
    )
    assert vector_rate > 2_000
    # At 3 cells/kernel this shape is bound by the per-kernel analytic
    # front end (digest + summary, shared by both paths and pinned by
    # golden-stability of the digest), so the like-for-like ratio sits
    # lower than the campaign-scale plan bench (~7x); the absolute
    # kernels/sec above is the number tracked across PRs.
    assert speedup >= 2.5


def test_fast_path_speedup(machine, arch):
    """Summary path vs reference path on identical kernels: >= 10x."""
    sequences = list(itertools.islice(covering_sequences(_CANDIDATES), 48))
    kernels = [
        build_stressmark(arch, sequence, LOOP_SIZE) for sequence in sequences
    ]

    fast_model = CorePipelineModel(arch)
    start = time.perf_counter()
    for kernel in kernels:
        for smt in _SMT_MODES:
            fast_model.activity(kernel, smt)
    fast_elapsed = time.perf_counter() - start

    reference_model = CorePipelineModel(arch)
    start = time.perf_counter()
    for kernel in kernels:
        for smt in _SMT_MODES:
            reference_model.reference_activity(kernel, smt)
    reference_elapsed = time.perf_counter() - start

    speedup = reference_elapsed / fast_elapsed
    print(
        f"\nsummary path: {fast_elapsed * 1e3:.1f} ms, reference path: "
        f"{reference_elapsed * 1e3:.1f} ms -> {speedup:.1f}x speedup "
        f"({len(kernels)} kernels x {len(_SMT_MODES)} SMT modes, "
        f"loop {LOOP_SIZE})"
    )
    assert speedup >= 10.0

    # Both paths agree (spot check; the invariance suite is exhaustive).
    sample = kernels[0]
    fast = fast_model.bounds(sample, 2)
    reference = reference_model.reference_bounds(sample, 2)
    assert abs(fast.period - reference.period) <= 1e-9 * reference.period


def test_aperiodic_throughput(machine, arch):
    """Table-2-shaped kernels: O(loop) summaries, summarized once."""
    from repro.workloads.random_gen import RandomBenchmarkPolicy

    kernels = RandomBenchmarkPolicy(arch, loop_size=LOOP_SIZE, seed=3).build(24)
    runner = _fresh_machine(arch)
    start = time.perf_counter()
    for smt in _SMT_MODES:
        runner.run_many(kernels, MachineConfig(arch.chip.max_cores, smt))
    elapsed = time.perf_counter() - start
    rate = len(kernels) * len(_SMT_MODES) / elapsed
    print(
        f"\naperiodic evaluation: {rate:,.0f} measurements/sec "
        f"({len(kernels)} random {LOOP_SIZE}-instruction kernels)"
    )
    assert rate > 100
