"""Figure 6: bottom-up vs top-down models across all configurations.

Paper result: all four models land in the 2-4% mean PAAE range on SPEC
CPU2006; TD_SPEC (trained on the validation set) is the optimistic
bound, and the proposed BU model comes closest to it, ahead of
TD_Micro and TD_Random.
"""

from __future__ import annotations

import statistics

from repro.power_model.metrics import paae


def test_fig6_model_comparison(benchmark, campaign_result):
    models = {"BU": campaign_result.bottom_up, **campaign_result.top_down}

    def compute():
        return {
            name: {
                config.label: paae(model, measurements)
                for config, measurements
                in campaign_result.spec_by_config.items()
            }
            for name, model in models.items()
        }

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    print("\n=== Figure 6: PAAE per configuration and model ===")
    names = ["TD_Micro", "TD_Random", "TD_SPEC", "BU"]
    print(f"{'Config':>6s} " + " ".join(f"{n:>10s}" for n in names))
    labels = list(next(iter(table.values())))
    for label in labels:
        row = " ".join(f"{table[name][label]:9.2f}%" for name in names)
        print(f"{label:>6s} {row}")
    means = {
        name: statistics.fmean(table[name].values()) for name in names
    }
    print(f"{'Mean':>6s} " + " ".join(f"{means[n]:9.2f}%" for n in names))

    # Paper orderings: TD_SPEC is optimistic-best; BU beats both
    # honest baselines and sits within 2 points of TD_SPEC.
    assert means["BU"] <= means["TD_Micro"] + 0.05
    assert means["BU"] <= means["TD_Random"]
    assert means["BU"] - means["TD_SPEC"] < 2.0
    for name in names:
        assert means[name] < 5.0, f"{name} outside the paper's 2-4% regime"
