"""Figure 5a: SPEC power breakdown, real vs predicted, CMP-SMT 4-4.

Prints one row per SPEC CPU2006 benchmark on the 4-core/4-way-SMT
configuration: measured power, predicted power, and the per-component
stack (workload-independent, uncore, CMP, SMT, dynamic).  Only the
dynamic component varies with the workload -- the paper's observation
that the configuration-dependent components stay constant.
"""

from __future__ import annotations

from repro.sim import MachineConfig


def test_fig5a_breakdown(benchmark, campaign_result):
    model = campaign_result.bottom_up
    config = MachineConfig(4, 4)
    measurements = campaign_result.spec_by_config[config]

    breakdowns = benchmark.pedantic(
        lambda: [model.breakdown(m) for m in measurements],
        rounds=1,
        iterations=1,
    )

    print("\n=== Figure 5a: SPEC power breakdown, config 4-4 "
          "(normalized to max measured) ===")
    peak = max(m.mean_power for m in measurements)
    header = (f"{'Benchmark':12s} {'Real':>6s} {'Pred':>6s} {'WI':>6s} "
              f"{'Uncore':>7s} {'CMP':>6s} {'SMT':>6s} {'Dyn':>6s}")
    print(header)
    for measurement, parts in zip(measurements, breakdowns):
        predicted = sum(parts.values())
        print(
            f"{measurement.workload_name:12s} "
            f"{measurement.mean_power / peak:6.3f} {predicted / peak:6.3f} "
            f"{parts['Workload_Independent'] / peak:6.3f} "
            f"{parts['Uncore'] / peak:7.3f} {parts['CMP_effect'] / peak:6.3f} "
            f"{parts['SMT_effect'] / peak:6.3f} {parts['Dynamic'] / peak:6.3f}"
        )

    # Tracking: predictions follow the measured per-benchmark variation.
    errors = [
        abs(sum(parts.values()) - m.mean_power) / m.mean_power
        for m, parts in zip(measurements, breakdowns)
    ]
    assert max(errors) < 0.10, "prediction does not track measured power"

    # Non-dynamic components are constant across benchmarks.
    for key in ("Workload_Independent", "Uncore", "CMP_effect", "SMT_effect"):
        values = {round(parts[key], 6) for parts in breakdowns}
        assert len(values) == 1, f"{key} varies across workloads"
