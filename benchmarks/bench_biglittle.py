"""Heterogeneous-plan throughput: big.LITTLE cells/second.

The perf-gate companion to ``bench_exec_engine``: the same
campaign-scale kernel set swept across a big:little topology *ladder*
(plus per-cluster-DVFS shapes) instead of the homogeneous CMP-SMT
grid.  Asserts

* vector-vs-scalar **bit-identity** on the heterogeneous plan -- every
  topology cell's per-cluster tensor pass must reproduce the scalar
  topology walk's counters, powers and noise draws exactly;
* a heterogeneous cells/second floor with the vector plane on, and a
  like-for-like speedup over the scalar reference;

and records the headline ``biglittle`` numbers in
``BENCH_results.json``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import LOOP_SIZE, record_result
from repro.exec import ExperimentPlan, SerialExecutor
from repro.sim import Machine, parse_topology, topology_ladder
from repro.stressmark.search import build_stressmark, covering_sequences

_CANDIDATES = ("mulldo", "lxvw4x", "xvnmsubmdp")
#: Campaign-scale kernel count (matches the homogeneous vector bench).
_PLAN_KERNELS = 96
_DURATION = 1.0

#: The topology axis: the full ratio ladder at SMT-1 and SMT-2 plus
#: per-cluster-DVFS shapes, 14 heterogeneous chips per kernel.
_TOPOLOGIES = (
    *topology_ladder(8, step=2),
    *topology_ladder(8, step=2, smt=2),
    parse_topology("4big-2@p2+4little-2"),
    parse_topology("4big-4@turbo+4little-2@p3"),
    parse_topology("6big@p2+2little@p2"),
    parse_topology("2big-4+6little-2@p2"),
)


def _plan(arch, kernels: int = _PLAN_KERNELS) -> ExperimentPlan:
    sequences = covering_sequences(_CANDIDATES)[:kernels]
    built = [
        build_stressmark(arch, sequence, LOOP_SIZE) for sequence in sequences
    ]
    return ExperimentPlan.cross(built, _TOPOLOGIES, duration=_DURATION)


def _best_rate(plan, arch, vector: bool, rounds: int = 3) -> float:
    """Best-of-N cold executor runs, cells/second."""
    best = None
    for _ in range(rounds):
        executor = SerialExecutor(Machine(arch, vector=vector))
        start = time.perf_counter()
        executor.run(plan)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return plan.size / best


def test_heterogeneous_plan_throughput(arch):
    """Vector vs scalar on a big.LITTLE topology-ladder plan."""
    plan = _plan(arch)

    fast = SerialExecutor(Machine(arch, vector=True)).run(plan)
    reference = SerialExecutor(Machine(arch, vector=False)).run(plan)
    # The acceptance bar: per-cluster tensor passes reproduce the
    # scalar topology walk bit for bit, heterogeneous shapes included.
    assert fast == reference

    vector_rate = _best_rate(plan, arch, vector=True)
    scalar_rate = _best_rate(plan, arch, vector=False)
    speedup = vector_rate / scalar_rate
    print(
        f"\n=== big.LITTLE plane: {plan.size} cells "
        f"({_PLAN_KERNELS} kernels x {len(_TOPOLOGIES)} topologies, "
        f"loop {LOOP_SIZE}) ===\n"
        f"vectorized: {vector_rate:,.0f} cells/sec, "
        f"scalar reference: {scalar_rate:,.0f} cells/sec -> "
        f"{speedup:.1f}x speedup"
    )
    record_result(
        "biglittle",
        vector_cells_per_sec=round(vector_rate),
        scalar_cells_per_sec=round(scalar_rate),
        vector_speedup=round(speedup, 2),
        topologies=len(_TOPOLOGIES),
    )
    # Conservative shared-runner floors; local hardware measures far
    # higher (the recorded numbers track the real trajectory).
    assert vector_rate > 10_000
    assert speedup >= 2.5
