"""Figure 7: model accuracy on extreme-activity workloads.

Paper result: the micro-benchmark-trained models (BU, TD_Micro) hold
their accuracy on extreme single-activity workloads, while the
workload-trained models blow up -- TD_Random spectacularly so (62% on
the FXU-High case).  The *shape* to reproduce: BU/TD_Micro flat,
TD_Random worst on at least one extreme case by a wide margin.
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import LOOP_SIZE
from repro.power_model.metrics import paae
from repro.workloads.extreme import EXTREME_CASE_NAMES, extreme_kernels


def test_fig7_extreme_cases(benchmark, machine, campaign_result):
    models = {"BU": campaign_result.bottom_up, **campaign_result.top_down}
    kernels = extreme_kernels(machine.arch, loop_size=LOOP_SIZE)

    def compute():
        table = {}
        for case, kernel in kernels.items():
            measurements = [
                machine.run(kernel, config)
                for config in campaign_result.configs
            ]
            table[case] = {
                name: paae(model, measurements)
                for name, model in models.items()
            }
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    names = ["TD_Micro", "TD_Random", "TD_SPEC", "BU"]
    print("\n=== Figure 7: PAAE on extreme activity cases ===")
    print(f"{'Case':14s} " + " ".join(f"{n:>10s}" for n in names))
    for case in EXTREME_CASE_NAMES:
        row = " ".join(f"{table[case][name]:9.2f}%" for name in names)
        print(f"{case:14s} {row}")
    means = {
        name: statistics.fmean(table[case][name] for case in table)
        for name in names
    }
    print(f"{'Mean':14s} " + " ".join(f"{means[n]:9.2f}%" for n in names))

    # Micro-trained models stay in their normal regime on extremes.
    assert means["BU"] < 6.0
    assert means["TD_Micro"] < 6.0
    # Workload-trained models degrade; TD_Random has a blow-up case.
    worst_random = max(table[case]["TD_Random"] for case in table)
    worst_micro_trained = max(
        max(table[case]["BU"], table[case]["TD_Micro"]) for case in table
    )
    assert worst_random > worst_micro_trained, (
        "TD_Random should be the worst extrapolator"
    )
