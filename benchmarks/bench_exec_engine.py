"""Execution-engine throughput: cells/second and warm-store speedup.

Pins the scaling axis the engine adds on top of the evaluation engine:
how many *measurement cells* (workload x configuration x window) the
plan/executor/store pipeline completes per second, and how much a warm
result store accelerates a re-run of the same campaign.

The headline numbers (recorded in ``BENCH_results.json``):

* serial cells/sec over a Figure-9-shaped plan (stressmark kernels
  across the full 24-configuration sweep), asserted above a floor;
* vectorized-vs-scalar plan-evaluation throughput on a campaign-scale
  plan: the same cells measured through the tensor measurement plane
  (``sim/vector.py``) and through the retained scalar reference walk
  (``Machine(vector=False)`` -- the PR-3 evaluation path), asserted
  bit-identical, plus the *fused steady-state* rate -- a resident
  executor replaying the plan-cached fused program -- gated at
  >= 500k cells/sec;
* the warm sensor-batch crossover: with the draw-constant cache warm,
  the batch size at which ``measure_batch`` beats the scalar
  ``measure`` loop, gated at <= 2 (it was ~800 before the per-seed
  draws were cached);
* cold-vs-warm store speedup on the identical plan (the warm pass
  performs zero machine invocations), asserted >= 2x;
* two-replica shard scheduler scaling: the same plan through
  :class:`~repro.exec.shards.ShardedExecutor` against one and two
  ``repro serve`` subprocesses, asserted bit-identical to serial and
  (on multi-core hosts) >= 1.7x faster with the second replica;
* parallel-executor wall time on the same plan, reported for context.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time

from benchmarks.conftest import LOOP_SIZE, record_result
from repro.exec import (
    ExperimentPlan,
    ParallelExecutor,
    ResultStore,
    SerialExecutor,
    ShardedExecutor,
)
from repro.sim import Machine
from repro.sim.config import standard_configurations
from repro.stressmark.search import build_stressmark, covering_sequences

_CANDIDATES = ("mulldo", "lxvw4x", "xvnmsubmdp")
_KERNELS = 40
#: Campaign-scale kernel count for the vector-vs-scalar comparison:
#: wide enough that the tensor pass's fixed setup (stacking, the
#: batched MT19937 sensor seeding) amortizes the way a real sweep does.
_PLAN_KERNELS = 192
_DURATION = 1.0


def _plan(arch, kernels: int = _KERNELS) -> ExperimentPlan:
    sequences = covering_sequences(_CANDIDATES)[:kernels]
    built = [
        build_stressmark(arch, sequence, LOOP_SIZE) for sequence in sequences
    ]
    configs = standard_configurations(
        arch.chip.max_cores, arch.chip.smt_modes()
    )
    return ExperimentPlan.cross(built, configs, duration=_DURATION)


def _best_rate(plan, arch, vector: bool, rounds: int = 3) -> float:
    """Best-of-N cold executor runs, cells/second."""
    best = None
    for _ in range(rounds):
        executor = SerialExecutor(Machine(arch, vector=vector))
        start = time.perf_counter()
        executor.run(plan)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return plan.size / best


def test_engine_cells_per_second(benchmark, arch):
    plan = _plan(arch)

    def run_cold() -> int:
        executor = SerialExecutor(Machine(arch))
        executor.run(plan)
        return plan.size

    start = time.perf_counter()
    cells = benchmark.pedantic(run_cold, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    rate = cells / elapsed
    print(
        f"\n=== Execution engine: {cells} cells "
        f"({_KERNELS} kernels x 24 configurations, loop {LOOP_SIZE}) ===\n"
        f"serial throughput: {rate:,.0f} cells/sec"
    )
    record_result("exec_engine", cold_cells_per_sec=round(rate))
    # The engine veneer must stay thin: the evaluation engine under it
    # manages hundreds of cells/sec, and plan/expansion bookkeeping
    # must not eat that.
    assert rate > 100


def test_vector_plan_throughput(arch):
    """Tensor plane vs scalar reference on a campaign-scale plan.

    Both paths run the identical plan through cold machines; the
    scalar pass *is* the retained PR-3 evaluation path, so the ratio
    is the vector plane's like-for-like speedup.  Results must agree
    bit for bit.
    """
    plan = _plan(arch, _PLAN_KERNELS)

    fast = SerialExecutor(Machine(arch, vector=True)).run(plan)
    reference = SerialExecutor(Machine(arch, vector=False)).run(plan)
    assert fast == reference  # bit-identical at benchmark scale too

    vector_rate = _best_rate(plan, arch, vector=True)
    scalar_rate = _best_rate(plan, arch, vector=False)
    speedup = vector_rate / scalar_rate

    # Steady state: a resident executor re-running the plan replays the
    # plan-cached fused program (compilation fully amortized) -- the
    # campaign-loop regime, where the same plan object is re-executed
    # against a warm machine.  Best-of-8 absorbs scheduler noise.
    resident = SerialExecutor(Machine(arch, vector=True))
    assert resident.run(plan) == reference  # compile + cache the program
    fused_elapsed = float("inf")
    for _ in range(8):
        start = time.perf_counter()
        resident.run(plan)
        fused_elapsed = min(fused_elapsed, time.perf_counter() - start)
    fused_rate = plan.size / fused_elapsed

    print(
        f"\n=== Vector plane: {plan.size} cells "
        f"({_PLAN_KERNELS} kernels x 24 configurations, loop {LOOP_SIZE}) ===\n"
        f"vectorized (cold): {vector_rate:,.0f} cells/sec, "
        f"scalar reference: {scalar_rate:,.0f} cells/sec -> "
        f"{speedup:.1f}x speedup\n"
        f"fused steady state (plan-cached program): "
        f"{fused_rate:,.0f} cells/sec"
    )
    record_result(
        "exec_engine",
        vector_cells_per_sec=round(vector_rate),
        scalar_cells_per_sec=round(scalar_rate),
        vector_speedup=round(speedup, 2),
        fused_cells_per_sec=round(fused_rate),
    )
    # The pinned perf-smoke floors (CI runs this on shared runners, so
    # the absolute floors are conservative; local hardware typically
    # measures 80-120k cold and 600-800k fused steady state).
    assert vector_rate > 30_000
    # Like-for-like: the tensor plane must stay well ahead of the
    # scalar walk (typically 5-7x; the floor below absorbs runner
    # noise, the recorded number tracks the real trajectory).
    assert speedup >= 4.0
    # The headline fused-program gate: half a million measurement
    # cells per second once compilation is amortized.
    assert fused_rate >= 500_000


def test_sensor_batch_crossover(arch):
    """Warm sensor-batch crossover: the batch size where batching wins.

    ``measure_batch`` historically needed ~800 cells to amortize its
    MT19937 seeding against the scalar ``measure`` loop.  With the
    per-seed draw constants cached (two-generation draw cache), the
    warm batch path wins at any size -- the crossover pinned here is
    the smallest batch size whose warm batched rate beats the scalar
    loop.
    """
    from repro.sim.sensors import PowerSensor

    sensor = PowerSensor()
    duration = 1.0
    powers = [40.0 + 0.125 * index for index in range(4096)]
    seeds = [7_000_000 + index for index in range(4096)]

    # Warm both paths: the scalar loop's rate is draw-cache-free by
    # construction (measure() recomputes its draws every call).
    sensor.measure_batch(powers, duration, seeds)
    start = time.perf_counter()
    for power, seed in zip(powers, seeds):
        sensor.measure(power, duration, seed)
    scalar_elapsed = time.perf_counter() - start

    crossover = None
    rates = {}
    for size in (1, 2, 4, 8, 64, 512):
        chunks = [
            (powers[base : base + size], seeds[base : base + size])
            for base in range(0, len(powers), size)
        ]
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for chunk_powers, chunk_seeds in chunks:
                sensor.measure_batch(chunk_powers, duration, chunk_seeds)
            best = min(best, time.perf_counter() - start)
        rates[size] = len(powers) / best
        if crossover is None and best <= scalar_elapsed:
            crossover = size
    scalar_rate = len(powers) / scalar_elapsed
    print(
        f"\n=== Sensor crossover: scalar {scalar_rate:,.0f} draws/sec ===\n"
        + "\n".join(
            f"batch {size:>4}: {rate:,.0f} draws/sec"
            for size, rate in rates.items()
        )
        + f"\nwarm crossover: {crossover}"
    )
    record_result(
        "exec_engine",
        sensor_scalar_draws_per_sec=round(scalar_rate),
        sensor_batch1_draws_per_sec=round(rates[1]),
        sensor_warm_crossover=crossover,
    )
    # The gate: warm batching must win from (near) the first cell.
    # Before the draw cache the crossover sat around 800.
    assert crossover is not None and crossover <= 2


def test_warm_store_speedup(arch, tmp_path):
    plan = _plan(arch)
    store = ResultStore(tmp_path / "store")

    start = time.perf_counter()
    cold = SerialExecutor(Machine(arch), store=store).run(plan)
    cold_elapsed = time.perf_counter() - start

    warm_machine = Machine(arch)

    def forbid(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("machine invoked on warm run")

    warm_machine.run = warm_machine.run_many = warm_machine.run_cells = forbid
    # The warm run is repeatable (the store is unchanged), so time it
    # best-of-3: single-shot timing turns scheduler noise on shared
    # runners into gate flakes.
    warm_elapsed = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        warm = SerialExecutor(warm_machine, store=store).run(plan)
        warm_elapsed = min(warm_elapsed, time.perf_counter() - start)

    assert warm == cold
    speedup = cold_elapsed / warm_elapsed
    print(
        f"\ncold (measure + persist): {cold_elapsed * 1e3:.0f} ms, "
        f"warm (store only): {warm_elapsed * 1e3:.0f} ms -> "
        f"{speedup:.1f}x speedup, {len(store)} stored cells"
    )
    record_result("exec_engine", warm_store_speedup=round(speedup, 2))
    assert speedup >= 2.0


def test_run_registry_overhead(tmp_path):
    """The persistent run registry must stay invisible next to
    measurement cost: flock'd appends in the tens-of-microseconds
    range, full replay of a busy server's history well under a second.
    Loose gates -- this documents the envelope, not a razor's edge."""
    from repro.exec.registry import RunRegistry

    registry = RunRegistry(tmp_path)
    runs = 500
    start = time.perf_counter()
    for index in range(runs):
        run = f"{index:024x}"
        registry.record(run, "running", cells=8, plan="bench plan")
        registry.record(run, "complete", measured=8, warm=0)
    record_elapsed = time.perf_counter() - start
    per_record_us = record_elapsed / (2 * runs) * 1e6

    start = time.perf_counter()
    replayed = RunRegistry(tmp_path)
    replay_elapsed = time.perf_counter() - start
    assert len(replayed) == runs

    start = time.perf_counter()
    dropped = registry.compact()
    compact_elapsed = time.perf_counter() - start
    assert dropped == runs  # two lines per run collapse to one

    print(
        f"\nregistry: {per_record_us:.0f} us/record (append+flock), "
        f"replay of {2 * runs} lines: {replay_elapsed * 1e3:.0f} ms, "
        f"compact: {compact_elapsed * 1e3:.0f} ms"
    )
    record_result(
        "exec_engine",
        registry_record_us=round(per_record_us, 1),
        registry_replay_ms=round(replay_elapsed * 1e3, 1),
    )
    assert per_record_us < 5000  # 5 ms/record is already pathological
    assert replay_elapsed < 2.0


def test_parallel_executor_wall_time(arch):
    plan = _plan(arch)
    start = time.perf_counter()
    serial = SerialExecutor(Machine(arch)).run(plan)
    serial_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    parallel = ParallelExecutor(Machine(arch), workers=4).run(plan)
    parallel_elapsed = time.perf_counter() - start

    assert parallel == serial  # bit-identity at benchmark scale too
    print(
        f"\nserial: {serial_elapsed * 1e3:.0f} ms, "
        f"parallel (4 workers, cold caches): {parallel_elapsed * 1e3:.0f} ms "
        f"({plan.size} cells)"
    )


def _spawn_replica() -> tuple[subprocess.Popen, str]:
    """One ``repro serve`` subprocess on an ephemeral port."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=os.environ.copy(),
    )
    banner = process.stdout.readline()
    match = re.search(r"http://[\d.]+:\d+", banner)
    if match is None:  # pragma: no cover - startup failure path
        process.kill()
        raise RuntimeError(f"repro serve failed to start: {banner!r}")
    return process, match.group(0)


def _shard_elapsed(machine, plan, endpoints: list[str], rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        executor = ShardedExecutor(machine, endpoints, local=False)
        try:
            start = time.perf_counter()
            executor.run(plan)
            best = min(best, time.perf_counter() - start)
        finally:
            executor.close()
    return best


def test_sharded_replica_scaling(arch):
    """Two serve replicas vs one: near-linear scaling, identical bytes.

    Two real ``python -m repro serve`` subprocesses (separate
    interpreters, so real CPU parallelism); the shard scheduler
    partitions the plan by cell-key prefix across them.  Bit-identity
    against one-shot serial execution is asserted unconditionally; the
    >= 1.7x scaling gate only applies on multi-core hosts (on a single
    core two replicas timeshare and scaling is physically impossible).
    """
    plan = _plan(arch, kernels=96)
    machine = Machine(arch)
    serial = SerialExecutor(Machine(arch)).run(plan)

    replicas = [_spawn_replica() for _ in range(2)]
    endpoints = [url for _, url in replicas]
    try:
        # Warm both replicas' resident machine caches (kernel packing,
        # stacks) so the timed passes compare routing, not compilation.
        warm = ShardedExecutor(machine, endpoints, local=False)
        try:
            assert warm.run(plan) == serial
        finally:
            warm.close()

        one = _shard_elapsed(machine, plan, endpoints[:1])
        two = _shard_elapsed(machine, plan, endpoints)
        executor = ShardedExecutor(machine, endpoints, local=False)
        try:
            assert executor.run(plan) == serial  # bytes after timing too
        finally:
            executor.close()
    finally:
        for process, _ in replicas:
            process.kill()
            process.wait()

    scaling = one / two
    cores = os.cpu_count() or 1
    print(
        f"\n=== Shard scheduler: {plan.size} cells, 2 serve replicas ===\n"
        f"1 replica: {one * 1e3:.0f} ms, 2 replicas: {two * 1e3:.0f} ms "
        f"-> {scaling:.2f}x scaling ({cores} host cores)"
    )
    record_result(
        "exec_engine",
        shard_one_replica_ms=round(one * 1e3, 1),
        shard_two_replica_ms=round(two * 1e3, 1),
        shard_two_replica_scaling=round(scaling, 2),
        shard_host_cores=cores,
    )
    if cores >= 2:
        assert scaling >= 1.7


def test_wire_v2_deserialization(arch):
    """Wire-path fast lane: pooled bodies + a warm intern cache.

    Times what a resident server actually does per request -- parse
    the JSON body and rebuild an :class:`ExperimentPlan` -- for the v1
    inline format (cold, no intern cache: the pre-v2 wire path) and
    for a v2 pooled body hitting a warm cross-request intern cache
    (the steady campaign-loop regime, where every request names the
    same few workloads and configurations by digest).  The >= 5x gate
    is the PR's headline acceptance number.
    """
    import json as json_mod

    from repro.exec.serialize import (
        WireInternCache,
        plan_from_dict,
        plan_to_dict,
        plan_to_dict_v2,
    )

    plan = _plan(arch, kernels=96)
    v1_body = json_mod.dumps(plan_to_dict(plan)).encode()
    v2_body = json_mod.dumps(plan_to_dict_v2(plan)).encode()

    def best(decode, rounds: int = 5) -> float:
        elapsed = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            decode()
            elapsed = min(elapsed, time.perf_counter() - start)
        return elapsed

    cold = best(lambda: plan_from_dict(json_mod.loads(v1_body)))
    intern = WireInternCache()
    plan_from_dict(json_mod.loads(v2_body), intern=intern)  # warm it
    warm = best(
        lambda: plan_from_dict(json_mod.loads(v2_body), intern=intern)
    )

    cold_us = cold / plan.size * 1e6
    warm_us = warm / plan.size * 1e6
    speedup = cold / warm
    print(
        f"\n=== Wire v2: {plan.size} cells, "
        f"v1 body {len(v1_body):,} B -> v2 body {len(v2_body):,} B ===\n"
        f"cold v1 decode: {cold_us:.1f} us/cell, "
        f"warm v2 decode: {warm_us:.1f} us/cell -> {speedup:.1f}x"
    )
    record_result(
        "exec_engine",
        remote_deser_us_per_cell=round(warm_us, 2),
        remote_deser_cold_us_per_cell=round(cold_us, 2),
        remote_deser_speedup=round(speedup, 1),
        wire_v2_body_bytes=len(v2_body),
        wire_v1_body_bytes=len(v1_body),
    )
    assert speedup >= 5.0  # the acceptance gate
    # Stats sanity: the warm rounds rebuilt nothing.
    assert intern.stats()["workloads"]["misses"] <= len(
        plan_to_dict_v2(plan)["pool"]["workloads"]
    )


def test_remote_warm_throughput(arch):
    """Warm-serve ceiling over a real socket: store + sidecar + intern.

    One ``repro serve`` subprocess; the first campaign populates its
    store (and sidecar indexes), the timed re-runs are pure warm
    serves -- wire v2 bodies, interned plan rebuild, store hits seeked
    via the persistent index.  The floor is deliberately conservative
    (CI runners are noisy); the recorded number is the one to watch.
    """
    from repro.exec import RemoteExecutor

    plan = _plan(arch, kernels=96)
    machine = Machine(arch)
    process, url = _spawn_replica()
    try:
        cold = RemoteExecutor(url)
        try:
            start = time.perf_counter()
            first = cold.run(plan)
            cold_elapsed = time.perf_counter() - start
        finally:
            cold.close()
        best = float("inf")
        for _ in range(3):
            executor = RemoteExecutor(url)
            try:
                start = time.perf_counter()
                warm = executor.run(plan)
                best = min(best, time.perf_counter() - start)
            finally:
                executor.close()
        assert warm == first  # warm serves are bit-identical
    finally:
        process.kill()
        process.wait()

    rate = plan.size / best
    print(
        f"\n=== Remote warm serve: {plan.size} cells over one replica ===\n"
        f"cold campaign: {cold_elapsed * 1e3:.0f} ms, "
        f"warm re-serve: {best * 1e3:.0f} ms -> {rate:,.0f} cells/sec"
    )
    record_result(
        "exec_engine",
        remote_warm_cells_per_sec=round(rate),
        remote_cold_campaign_ms=round(cold_elapsed * 1e3, 1),
    )
    assert rate >= 500  # conservative floor; see BENCH_results.json
