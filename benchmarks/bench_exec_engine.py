"""Execution-engine throughput: cells/second and warm-store speedup.

Pins the scaling axis the engine adds on top of the evaluation engine:
how many *measurement cells* (workload x configuration x window) the
plan/executor/store pipeline completes per second, and how much a warm
result store accelerates a re-run of the same campaign.

Three numbers are reported:

* serial cells/sec over a Figure-9-shaped plan (stressmark kernels
  across the full 24-configuration sweep), asserted above a floor;
* cold-vs-warm store speedup on the identical plan (the warm pass
  performs zero machine invocations), asserted >= 2x -- modest only
  because the evaluation engine under the cold path is itself fast at
  smoke scale; the warm floor is pure JSON parsing;
* parallel-executor wall time on the same plan, reported for context
  (worker machines start with cold caches, so small plans understate
  the parallel win).
"""

from __future__ import annotations

import time

from benchmarks.conftest import LOOP_SIZE
from repro.exec import (
    ExperimentPlan,
    ParallelExecutor,
    ResultStore,
    SerialExecutor,
)
from repro.sim import Machine
from repro.sim.config import standard_configurations
from repro.stressmark.search import build_stressmark, covering_sequences

_CANDIDATES = ("mulldo", "lxvw4x", "xvnmsubmdp")
_KERNELS = 40
_DURATION = 1.0


def _plan(arch) -> ExperimentPlan:
    sequences = covering_sequences(_CANDIDATES)[:_KERNELS]
    kernels = [
        build_stressmark(arch, sequence, LOOP_SIZE) for sequence in sequences
    ]
    configs = standard_configurations(
        arch.chip.max_cores, arch.chip.smt_modes()
    )
    return ExperimentPlan.cross(kernels, configs, duration=_DURATION)


def test_engine_cells_per_second(benchmark, arch):
    plan = _plan(arch)

    def run_cold() -> int:
        executor = SerialExecutor(Machine(arch))
        executor.run(plan)
        return plan.size

    start = time.perf_counter()
    cells = benchmark.pedantic(run_cold, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    rate = cells / elapsed
    print(
        f"\n=== Execution engine: {cells} cells "
        f"({_KERNELS} kernels x 24 configurations, loop {LOOP_SIZE}) ===\n"
        f"serial throughput: {rate:,.0f} cells/sec"
    )
    # The engine veneer must stay thin: the evaluation engine under it
    # manages hundreds of cells/sec, and plan/expansion bookkeeping
    # must not eat that.
    assert rate > 100


def test_warm_store_speedup(arch, tmp_path):
    plan = _plan(arch)
    store = ResultStore(tmp_path / "store")

    start = time.perf_counter()
    cold = SerialExecutor(Machine(arch), store=store).run(plan)
    cold_elapsed = time.perf_counter() - start

    warm_machine = Machine(arch)

    def forbid(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("machine invoked on warm run")

    warm_machine.run = warm_machine.run_many = forbid
    start = time.perf_counter()
    warm = SerialExecutor(warm_machine, store=store).run(plan)
    warm_elapsed = time.perf_counter() - start

    assert warm == cold
    speedup = cold_elapsed / warm_elapsed
    print(
        f"\ncold (measure + persist): {cold_elapsed * 1e3:.0f} ms, "
        f"warm (store only): {warm_elapsed * 1e3:.0f} ms -> "
        f"{speedup:.1f}x speedup, {len(store)} stored cells"
    )
    assert speedup >= 2.0


def test_parallel_executor_wall_time(arch):
    plan = _plan(arch)
    start = time.perf_counter()
    serial = SerialExecutor(Machine(arch)).run(plan)
    serial_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    parallel = ParallelExecutor(Machine(arch), workers=4).run(plan)
    parallel_elapsed = time.perf_counter() - start

    assert parallel == serial  # bit-identity at benchmark scale too
    print(
        f"\nserial: {serial_elapsed * 1e3:.0f} ms, "
        f"parallel (4 workers, cold caches): {parallel_elapsed * 1e3:.0f} ms "
        f"({plan.size} cells)"
    )
