"""Execution-engine throughput: cells/second and warm-store speedup.

Pins the scaling axis the engine adds on top of the evaluation engine:
how many *measurement cells* (workload x configuration x window) the
plan/executor/store pipeline completes per second, and how much a warm
result store accelerates a re-run of the same campaign.

Four numbers are reported (and recorded in ``BENCH_results.json``):

* serial cells/sec over a Figure-9-shaped plan (stressmark kernels
  across the full 24-configuration sweep), asserted above a floor;
* vectorized-vs-scalar plan-evaluation throughput on a campaign-scale
  plan: the same cells measured through the tensor measurement plane
  (``sim/vector.py``) and through the retained scalar reference walk
  (``Machine(vector=False)`` -- the PR-3 evaluation path), asserted
  bit-identical and >= 4x faster (typically 5-6x; the residual floor
  is the bit-exact per-cell sensor draws);
* cold-vs-warm store speedup on the identical plan (the warm pass
  performs zero machine invocations), asserted >= 2x;
* parallel-executor wall time on the same plan, reported for context.
"""

from __future__ import annotations

import time

from benchmarks.conftest import LOOP_SIZE, record_result
from repro.exec import (
    ExperimentPlan,
    ParallelExecutor,
    ResultStore,
    SerialExecutor,
)
from repro.sim import Machine
from repro.sim.config import standard_configurations
from repro.stressmark.search import build_stressmark, covering_sequences

_CANDIDATES = ("mulldo", "lxvw4x", "xvnmsubmdp")
_KERNELS = 40
#: Campaign-scale kernel count for the vector-vs-scalar comparison:
#: wide enough that the tensor pass's fixed setup (stacking, the
#: batched MT19937 sensor seeding) amortizes the way a real sweep does.
_PLAN_KERNELS = 192
_DURATION = 1.0


def _plan(arch, kernels: int = _KERNELS) -> ExperimentPlan:
    sequences = covering_sequences(_CANDIDATES)[:kernels]
    built = [
        build_stressmark(arch, sequence, LOOP_SIZE) for sequence in sequences
    ]
    configs = standard_configurations(
        arch.chip.max_cores, arch.chip.smt_modes()
    )
    return ExperimentPlan.cross(built, configs, duration=_DURATION)


def _best_rate(plan, arch, vector: bool, rounds: int = 3) -> float:
    """Best-of-N cold executor runs, cells/second."""
    best = None
    for _ in range(rounds):
        executor = SerialExecutor(Machine(arch, vector=vector))
        start = time.perf_counter()
        executor.run(plan)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return plan.size / best


def test_engine_cells_per_second(benchmark, arch):
    plan = _plan(arch)

    def run_cold() -> int:
        executor = SerialExecutor(Machine(arch))
        executor.run(plan)
        return plan.size

    start = time.perf_counter()
    cells = benchmark.pedantic(run_cold, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    rate = cells / elapsed
    print(
        f"\n=== Execution engine: {cells} cells "
        f"({_KERNELS} kernels x 24 configurations, loop {LOOP_SIZE}) ===\n"
        f"serial throughput: {rate:,.0f} cells/sec"
    )
    record_result("exec_engine", cold_cells_per_sec=round(rate))
    # The engine veneer must stay thin: the evaluation engine under it
    # manages hundreds of cells/sec, and plan/expansion bookkeeping
    # must not eat that.
    assert rate > 100


def test_vector_plan_throughput(arch):
    """Tensor plane vs scalar reference on a campaign-scale plan.

    Both paths run the identical plan through cold machines; the
    scalar pass *is* the retained PR-3 evaluation path, so the ratio
    is the vector plane's like-for-like speedup.  Results must agree
    bit for bit.
    """
    plan = _plan(arch, _PLAN_KERNELS)

    fast = SerialExecutor(Machine(arch, vector=True)).run(plan)
    reference = SerialExecutor(Machine(arch, vector=False)).run(plan)
    assert fast == reference  # bit-identical at benchmark scale too

    vector_rate = _best_rate(plan, arch, vector=True)
    scalar_rate = _best_rate(plan, arch, vector=False)
    speedup = vector_rate / scalar_rate
    print(
        f"\n=== Vector plane: {plan.size} cells "
        f"({_PLAN_KERNELS} kernels x 24 configurations, loop {LOOP_SIZE}) ===\n"
        f"vectorized: {vector_rate:,.0f} cells/sec, "
        f"scalar reference: {scalar_rate:,.0f} cells/sec -> "
        f"{speedup:.1f}x speedup"
    )
    record_result(
        "exec_engine",
        vector_cells_per_sec=round(vector_rate),
        scalar_cells_per_sec=round(scalar_rate),
        vector_speedup=round(speedup, 2),
    )
    # The pinned perf-smoke floor for the batched path (CI runs this
    # on shared runners, so the absolute floor is conservative; local
    # hardware typically measures 90-120k cells/sec).
    assert vector_rate > 20_000
    # Like-for-like: the tensor plane must stay well ahead of the
    # scalar walk (typically 5-6x; the floor below absorbs runner
    # noise, the recorded number tracks the real trajectory).
    assert speedup >= 4.0


def test_warm_store_speedup(arch, tmp_path):
    plan = _plan(arch)
    store = ResultStore(tmp_path / "store")

    start = time.perf_counter()
    cold = SerialExecutor(Machine(arch), store=store).run(plan)
    cold_elapsed = time.perf_counter() - start

    warm_machine = Machine(arch)

    def forbid(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("machine invoked on warm run")

    warm_machine.run = warm_machine.run_many = warm_machine.run_cells = forbid
    # The warm run is repeatable (the store is unchanged), so time it
    # best-of-3: single-shot timing turns scheduler noise on shared
    # runners into gate flakes.
    warm_elapsed = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        warm = SerialExecutor(warm_machine, store=store).run(plan)
        warm_elapsed = min(warm_elapsed, time.perf_counter() - start)

    assert warm == cold
    speedup = cold_elapsed / warm_elapsed
    print(
        f"\ncold (measure + persist): {cold_elapsed * 1e3:.0f} ms, "
        f"warm (store only): {warm_elapsed * 1e3:.0f} ms -> "
        f"{speedup:.1f}x speedup, {len(store)} stored cells"
    )
    record_result("exec_engine", warm_store_speedup=round(speedup, 2))
    assert speedup >= 2.0


def test_parallel_executor_wall_time(arch):
    plan = _plan(arch)
    start = time.perf_counter()
    serial = SerialExecutor(Machine(arch)).run(plan)
    serial_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    parallel = ParallelExecutor(Machine(arch), workers=4).run(plan)
    parallel_elapsed = time.perf_counter() - start

    assert parallel == serial  # bit-identity at benchmark scale too
    print(
        f"\nserial: {serial_elapsed * 1e3:.0f} ms, "
        f"parallel (4 workers, cold caches): {parallel_elapsed * 1e3:.0f} ms "
        f"({plan.size} cells)"
    )
