"""Package definition for the micro-benchmark generation reproduction.

``pip install -e .`` makes ``repro`` importable without PYTHONPATH
tricks and ships the bundled ISA/micro-architecture definition files
(``repro/isa/data/*.isa``, ``repro/march/data/*.march``) that
``get_architecture("POWER7")`` loads through ``importlib.resources``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-microprobe",
    version="0.2.0",
    description=(
        "Systematic energy characterization of CMP/SMT processors via "
        "automated micro-benchmarks (paper reproduction)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={
        "repro.isa": ["data/*.isa"],
        "repro.march": ["data/*.march"],
    },
    include_package_data=True,
    install_requires=[
        "numpy",
    ],
    extras_require={
        "test": [
            "pytest",
            "hypothesis",
        ],
        "cov": [
            "pytest-cov",
        ],
        "bench": [
            "pytest",
            "pytest-benchmark",
        ],
    },
)
